package partition

import "sort"

// Post-Build ownership mutation. Build produces an immutable Layout shared
// by every rank of an in-process world (and by the census reporting after
// the run), but the mid-solve rebalancer transfers owned vertices between
// ranks while the solve is running. A rank that migrates therefore first
// detaches its Subgraph with CloneForMigration and then edits the clone
// with the helpers below; the Layout the driver holds stays pristine.
//
// All helpers preserve the Subgraph invariants the solver relies on:
// Owned and Ghosts stay sorted, AdjOwned/OwnedWDeg stay parallel to
// Owned, and every Subscribers list stays sorted and duplicate-free.
// Hubs never migrate, so the hub tables are shared, not copied.

// CloneForMigration returns a copy of s whose ownership-mutable state —
// Owned, OwnedWDeg, AdjOwned, Ghosts, and Subscribers — is detached from
// the original. Adjacency slices themselves are shared (a migrating
// vertex's arc list moves wholesale and is never edited in place), as are
// the hub tables.
func (s *Subgraph) CloneForMigration() *Subgraph {
	c := *s
	c.Owned = append([]int(nil), s.Owned...)
	c.OwnedWDeg = append([]float64(nil), s.OwnedWDeg...)
	c.AdjOwned = append([][]Arc(nil), s.AdjOwned...)
	c.Ghosts = append([]int(nil), s.Ghosts...)
	c.Subscribers = make(map[int][]int, len(s.Subscribers))
	for v, subs := range s.Subscribers {
		c.Subscribers[v] = append([]int(nil), subs...)
	}
	return &c
}

// CloneForServing extends CloneForMigration for the resident serving path
// (internal/core's Session), whose edge updates also mutate the hub tables:
// Build shares Hubs across every rank's part and the updates adjust HubWDeg
// and the AdjHub shares in place, so those are detached as well. Inner
// adjacency slices stay shared — the serving mutators copy-on-write any arc
// list they edit.
func (s *Subgraph) CloneForServing() *Subgraph {
	c := s.CloneForMigration()
	c.Hubs = append([]int(nil), s.Hubs...)
	c.HubWDeg = append([]float64(nil), s.HubWDeg...)
	c.AdjHub = append([][]Arc(nil), s.AdjHub...)
	return c
}

// OwnedIndex returns the position of v in Owned, or (i, false) with the
// insertion point i when v is not owned here.
func (s *Subgraph) OwnedIndex(v int) (int, bool) {
	i := sort.SearchInts(s.Owned, v)
	return i, i < len(s.Owned) && s.Owned[i] == v
}

// RemoveOwned detaches owned vertex v and returns its weighted degree and
// adjacency. ok is false (and the subgraph unchanged) when v is not owned
// here.
func (s *Subgraph) RemoveOwned(v int) (wdeg float64, adj []Arc, ok bool) {
	i, found := s.OwnedIndex(v)
	if !found {
		return 0, nil, false
	}
	wdeg, adj = s.OwnedWDeg[i], s.AdjOwned[i]
	s.Owned = append(s.Owned[:i], s.Owned[i+1:]...)
	s.OwnedWDeg = append(s.OwnedWDeg[:i], s.OwnedWDeg[i+1:]...)
	s.AdjOwned = append(s.AdjOwned[:i], s.AdjOwned[i+1:]...)
	return wdeg, adj, true
}

// InsertOwned adds vertex v with the given weighted degree and adjacency
// at its sorted position. Inserting an already-owned vertex is a
// programming error upstream; the helper keeps the list consistent by
// replacing the entry in that case.
func (s *Subgraph) InsertOwned(v int, wdeg float64, adj []Arc) {
	i, found := s.OwnedIndex(v)
	if found {
		s.OwnedWDeg[i] = wdeg
		s.AdjOwned[i] = adj
		return
	}
	s.Owned = append(s.Owned, 0)
	copy(s.Owned[i+1:], s.Owned[i:])
	s.Owned[i] = v
	s.OwnedWDeg = append(s.OwnedWDeg, 0)
	copy(s.OwnedWDeg[i+1:], s.OwnedWDeg[i:])
	s.OwnedWDeg[i] = wdeg
	s.AdjOwned = append(s.AdjOwned, nil)
	copy(s.AdjOwned[i+1:], s.AdjOwned[i:])
	s.AdjOwned[i] = adj
}

// AddGhost records v as a ghost (sorted insert, no-op when present).
func (s *Subgraph) AddGhost(v int) {
	i := sort.SearchInts(s.Ghosts, v)
	if i < len(s.Ghosts) && s.Ghosts[i] == v {
		return
	}
	s.Ghosts = append(s.Ghosts, 0)
	copy(s.Ghosts[i+1:], s.Ghosts[i:])
	s.Ghosts[i] = v
}

// RemoveGhost drops v from the ghost list (no-op when absent).
func (s *Subgraph) RemoveGhost(v int) {
	i := sort.SearchInts(s.Ghosts, v)
	if i < len(s.Ghosts) && s.Ghosts[i] == v {
		s.Ghosts = append(s.Ghosts[:i], s.Ghosts[i+1:]...)
	}
}

// SetSubscribers replaces the subscriber set of owned vertex v with the
// given ranks, normalized to sorted order with duplicates and the
// receiving rank's own index removed (a rank never subscribes to itself).
func (s *Subgraph) SetSubscribers(v int, ranks []int) {
	subs := append([]int(nil), ranks...)
	sort.Ints(subs)
	out := subs[:0]
	for i, r := range subs {
		if r == s.Rank || (i > 0 && subs[i-1] == r) {
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		delete(s.Subscribers, v)
		return
	}
	s.Subscribers[v] = out
}

// Subscribe adds rank r to the subscriber set of owned vertex v (sorted
// insert, no-op when present or when r is this rank).
func (s *Subgraph) Subscribe(v, r int) {
	if r == s.Rank {
		return
	}
	subs := s.Subscribers[v]
	i := sort.SearchInts(subs, r)
	if i < len(subs) && subs[i] == r {
		return
	}
	subs = append(subs, 0)
	copy(subs[i+1:], subs[i:])
	subs[i] = r
	s.Subscribers[v] = subs
}
