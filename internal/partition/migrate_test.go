package partition

import (
	"reflect"
	"testing"
)

func testSubgraph() *Subgraph {
	return &Subgraph{
		Rank: 1, P: 4,
		GlobalVertices: 16,
		Owned:          []int{1, 5, 9, 13},
		OwnedWDeg:      []float64{2, 3, 4, 5},
		AdjOwned: [][]Arc{
			{{To: 2, W: 1}, {To: 5, W: 1}},
			{{To: 1, W: 1}, {To: 9, W: 2}},
			{{To: 5, W: 2}, {To: 2, W: 2}},
			{{To: 2, W: 5}},
		},
		Ghosts:      []int{2},
		Subscribers: map[int][]int{5: {0, 2}},
	}
}

func TestCloneForMigrationDetaches(t *testing.T) {
	orig := testSubgraph()
	want := testSubgraph() // reference copy for comparison
	c := orig.CloneForMigration()

	c.RemoveOwned(5)
	c.InsertOwned(2, 7, []Arc{{To: 1, W: 7}})
	c.AddGhost(6)
	c.RemoveGhost(2)
	c.Subscribe(9, 3)
	c.SetSubscribers(13, []int{2, 2, 1, 0})

	if !reflect.DeepEqual(orig.Owned, want.Owned) ||
		!reflect.DeepEqual(orig.OwnedWDeg, want.OwnedWDeg) ||
		!reflect.DeepEqual(orig.Ghosts, want.Ghosts) ||
		!reflect.DeepEqual(orig.Subscribers, want.Subscribers) {
		t.Fatalf("clone mutation leaked into the original:\n got %+v\nwant %+v", orig, want)
	}
}

func TestRemoveInsertOwned(t *testing.T) {
	s := testSubgraph().CloneForMigration()
	wdeg, adj, ok := s.RemoveOwned(5)
	if !ok || wdeg != 3 || len(adj) != 2 {
		t.Fatalf("RemoveOwned(5) = %v, %v, %v", wdeg, adj, ok)
	}
	if _, _, ok := s.RemoveOwned(5); ok {
		t.Fatal("second RemoveOwned(5) succeeded")
	}
	if _, _, ok := s.RemoveOwned(4); ok {
		t.Fatal("RemoveOwned of a non-owned vertex succeeded")
	}
	if want := []int{1, 9, 13}; !reflect.DeepEqual(s.Owned, want) {
		t.Fatalf("Owned = %v, want %v", s.Owned, want)
	}

	s.InsertOwned(6, 1.5, []Arc{{To: 1, W: 1.5}})
	s.InsertOwned(0, 2.5, nil)
	s.InsertOwned(15, 3.5, nil)
	if want := []int{0, 1, 6, 9, 13, 15}; !reflect.DeepEqual(s.Owned, want) {
		t.Fatalf("Owned = %v, want %v", s.Owned, want)
	}
	wantW := []float64{2.5, 2, 1.5, 4, 5, 3.5}
	if !reflect.DeepEqual(s.OwnedWDeg, wantW) {
		t.Fatalf("OwnedWDeg = %v, want %v (alignment broken)", s.OwnedWDeg, wantW)
	}
	if len(s.AdjOwned) != len(s.Owned) {
		t.Fatalf("AdjOwned length %d, Owned length %d", len(s.AdjOwned), len(s.Owned))
	}
	if i, ok := s.OwnedIndex(6); !ok || s.AdjOwned[i][0].W != 1.5 {
		t.Fatal("adjacency did not follow its vertex")
	}
}

func TestGhostSet(t *testing.T) {
	s := testSubgraph().CloneForMigration()
	s.AddGhost(6)
	s.AddGhost(0)
	s.AddGhost(6) // duplicate: no-op
	if want := []int{0, 2, 6}; !reflect.DeepEqual(s.Ghosts, want) {
		t.Fatalf("Ghosts = %v, want %v", s.Ghosts, want)
	}
	s.RemoveGhost(2)
	s.RemoveGhost(99) // absent: no-op
	if want := []int{0, 6}; !reflect.DeepEqual(s.Ghosts, want) {
		t.Fatalf("Ghosts = %v, want %v", s.Ghosts, want)
	}
}

func TestSubscriberSet(t *testing.T) {
	s := testSubgraph().CloneForMigration()
	s.Subscribe(5, 3)
	s.Subscribe(5, 0) // present: no-op
	s.Subscribe(5, 1) // own rank: no-op
	if want := []int{0, 2, 3}; !reflect.DeepEqual(s.Subscribers[5], want) {
		t.Fatalf("Subscribers[5] = %v, want %v", s.Subscribers[5], want)
	}
	s.SetSubscribers(9, []int{3, 1, 0, 3, 0})
	if want := []int{0, 3}; !reflect.DeepEqual(s.Subscribers[9], want) {
		t.Fatalf("Subscribers[9] = %v, want %v", s.Subscribers[9], want)
	}
	s.SetSubscribers(9, []int{1}) // only own rank: entry removed
	if _, ok := s.Subscribers[9]; ok {
		t.Fatal("empty subscriber set kept its map entry")
	}
}
