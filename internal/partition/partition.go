// Package partition implements the graph partitioning strategies of the
// paper: plain 1D round-robin partitioning and the distributed delegate
// partitioning extended from Pearce et al.
//
// Delegate partitioning duplicates high-degree vertices ("hubs", degree >=
// DHigh) on every rank. Arcs whose source is a low-degree vertex go to the
// source's owner (so an owner always sees its vertex's complete adjacency);
// arcs whose source is a hub initially go to the target's owner and are then
// rebalanced freely across ranks until every rank holds ≈ |arcs|/p arcs.
//
// The package also produces the per-rank census (arc counts, ghost counts,
// workload imbalance W = max/avg − 1) that the paper reports in Figure 6.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// Kind selects the partitioning strategy.
type Kind int

const (
	// Delegate duplicates hubs on all ranks and rebalances hub arcs,
	// following Pearce et al. as extended by the paper. It is the zero
	// value: the paper's method is the default everywhere.
	Delegate Kind = iota
	// OneD is round-robin 1D partitioning: vertex v and all its arcs are
	// owned by rank v mod p. This is the baseline the paper compares
	// against (Cheong-style distributed Louvain).
	OneD
)

func (k Kind) String() string {
	switch k {
	case OneD:
		return "1d"
	case Delegate:
		return "delegate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Arc is one directed arc of a local subgraph, in global vertex IDs.
type Arc struct {
	To int
	W  float64
}

// Subgraph is the portion of the graph materialized on one rank.
//
// Owned lists the low-degree vertices owned by this rank (every global
// vertex that is not a hub appears in exactly one rank's Owned, including
// isolated vertices). Hubs lists all hub vertices; the list is identical on
// every rank, but AdjHub holds only this rank's share of each hub's arcs.
type Subgraph struct {
	Rank int
	P    int

	// GlobalVertices is the vertex count of the global graph this subgraph
	// was cut from (vertex IDs are < GlobalVertices).
	GlobalVertices int

	Owned    []int   // sorted global IDs of owned low-degree vertices
	AdjOwned [][]Arc // complete adjacency of each owned vertex

	Hubs    []int     // sorted global hub IDs (same on all ranks)
	HubWDeg []float64 // global weighted degree of each hub
	AdjHub  [][]Arc   // this rank's share of each hub's arcs

	Ghosts []int // sorted global IDs of non-local, non-hub arc targets

	// Subscribers maps an owned vertex to the set of other ranks holding it
	// as a ghost; the owner pushes community updates to these ranks.
	Subscribers map[int][]int

	// OwnedWDeg is the weighted degree of each owned vertex (parallel to
	// Owned). For owned vertices the local adjacency is complete, so this
	// equals the global weighted degree.
	OwnedWDeg []float64

	// TotalWeight2 is the global 2m, shared by all ranks.
	TotalWeight2 float64
}

// NumLocalArcs returns the number of arcs stored on this rank.
func (s *Subgraph) NumLocalArcs() int64 {
	var n int64
	for _, a := range s.AdjOwned {
		n += int64(len(a))
	}
	for _, a := range s.AdjHub {
		n += int64(len(a))
	}
	return n
}

// Options configures Build.
type Options struct {
	P     int  // number of ranks, >= 1
	Kind  Kind // OneD or Delegate
	DHigh int  // hub degree threshold; <= 0 means DHigh = P (the paper's setting)

	// Workers bounds Build's intra-process parallelism: 0 picks a
	// host-sized count, 1 runs the historical serial path. Every worker
	// count produces a bit-identical Layout (chunk boundaries are a pure
	// function of the data size and partial results combine in chunk
	// order; see internal/par).
	Workers int
}

// Layout is a full partitioning of a graph: one Subgraph per rank plus the
// global hub directory.
type Layout struct {
	P     int
	Kind  Kind
	DHigh int
	Hubs  []int
	Parts []*Subgraph
}

// Owner returns the owning rank of a low-degree (non-hub) vertex.
func Owner(v, p int) int { return v % p }

// hubArc is one arc of a hub vertex awaiting placement.
type hubArc struct {
	hub int // index into hubs
	to  int
	w   float64
}

// Build partitions g across opt.P ranks. The heavy phases — hub
// identification, the owned-vertex adjacency copy, hub-arc bucketing, and
// ghost discovery — run on an internal/par worker pool when opt.Workers
// permits; the spill-pool placement and rebalance correction are inherently
// sequential greedy passes and stay serial. The Layout is bit-identical at
// every worker count.
func Build(g *graph.Graph, opt Options) (*Layout, error) {
	if opt.P < 1 {
		return nil, fmt.Errorf("partition: P = %d, want >= 1", opt.P)
	}
	dhigh := opt.DHigh
	if dhigh <= 0 {
		dhigh = opt.P
	}
	p := opt.P
	n := g.NumVertices()
	nw := opt.Workers
	if nw == 0 {
		nw = par.DefaultWorkers(1)
	}
	pool := par.NewPool(nw)
	defer pool.Close()

	// Identify hubs: per-chunk lists concatenate in chunk order, so the hub
	// directory is ascending exactly as the serial scan produces it.
	isHub := make([]bool, n)
	var hubs []int
	if opt.Kind == Delegate {
		hubs = findHubs(n, dhigh, g.Degree, isHub, pool)
	}

	parts := newParts(p, n, hubs, g.WeightedDegree, pool)

	assignOwned(g, parts, isHub, pool)

	// Assign hub arcs. Initially each hub arc (h, v) goes to the owner of
	// its target (co-locating delegate and target); hub→hub arcs go to a
	// spill pool for balancing; then a correction pass moves hub arcs from
	// overloaded to underloaded ranks.
	if opt.Kind == Delegate && len(hubs) > 0 {
		placeHubArcs(parts, bucketHubArcs(g, parts, hubs, isHub, pool))
	}

	finishLayout(parts, isHub, g.TotalWeight2(), pool)

	return &Layout{P: p, Kind: opt.Kind, DHigh: dhigh, Hubs: hubs, Parts: parts}, nil
}

// findHubs marks and lists the vertices with degree ≥ dhigh. Per-chunk
// lists concatenate in chunk order, so the directory is ascending exactly
// as a serial scan produces it.
func findHubs(n, dhigh int, degree func(u int) int, isHub []bool, pool *par.Pool) []int {
	if pool == nil {
		var hubs []int
		for u := 0; u < n; u++ {
			if degree(u) >= dhigh {
				isHub[u] = true
				hubs = append(hubs, u)
			}
		}
		return hubs
	}
	ncV := par.NumChunks(n)
	frag := make([][]int, ncV)
	pool.ParFor(ncV, func(c, _ int) {
		lo, hi := par.ChunkSpan(n, ncV, c)
		var hs []int
		for u := lo; u < hi; u++ {
			if degree(u) >= dhigh {
				isHub[u] = true
				hs = append(hs, u)
			}
		}
		frag[c] = hs
	})
	total := 0
	for _, f := range frag {
		total += len(f)
	}
	var hubs []int
	if total > 0 {
		hubs = make([]int, 0, total)
		for _, f := range frag {
			hubs = append(hubs, f...)
		}
	}
	return hubs
}

// newParts allocates the per-rank subgraphs with the shared hub directory
// and its weighted degrees (wdeg gives a vertex's global weighted degree).
func newParts(p, n int, hubs []int, wdeg func(u int) float64, pool *par.Pool) []*Subgraph {
	parts := make([]*Subgraph, p)
	pool.ParFor(p, func(r, _ int) {
		parts[r] = &Subgraph{
			Rank: r, P: p,
			GlobalVertices: n,
			Hubs:           hubs,
			Subscribers:    make(map[int][]int),
		}
		if len(hubs) > 0 {
			parts[r].HubWDeg = make([]float64, len(hubs))
			parts[r].AdjHub = make([][]Arc, len(hubs))
			for i, h := range hubs {
				parts[r].HubWDeg[i] = wdeg(h)
			}
		}
	})
	return parts
}

// placeHubArcs places the hub→hub spill pool on the least-loaded ranks in
// spill order, then runs the rebalance correction pass. Both passes are
// inherently sequential greedy loops and always run serially.
func placeHubArcs(parts []*Subgraph, spill []hubArc) {
	p := len(parts)
	loads := make([]int64, p)
	for r := 0; r < p; r++ {
		loads[r] = parts[r].NumLocalArcs()
	}
	for _, a := range spill {
		r := minLoadRank(loads)
		parts[r].AdjHub[a.hub] = append(parts[r].AdjHub[a.hub], Arc{To: a.to, W: a.w})
		loads[r]++
	}
	// Correction pass: move hub→low arcs from overloaded ranks to
	// underloaded ones until loads are within one arc of the average.
	rebalance(parts, loads)
}

// finishLayout runs ghost discovery and subscriber construction from the
// final arc placement; m2 is the graph's total weight 2m.
func finishLayout(parts []*Subgraph, isHub []bool, m2 float64, pool *par.Pool) {
	p := len(parts)
	// Ghost discovery from the final arc placement: each rank touches only
	// its own part, and the ghost list is sorted, so per-rank kernels are
	// independent and deterministic.
	pool.ParFor(p, func(r, _ int) {
		sp := parts[r]
		ghostSet := make(map[int]struct{})
		note := func(v int) {
			if isHub[v] || Owner(v, p) == r {
				return
			}
			ghostSet[v] = struct{}{}
		}
		for _, adj := range sp.AdjOwned {
			for _, a := range adj {
				note(a.To)
			}
		}
		for _, adj := range sp.AdjHub {
			for _, a := range adj {
				note(a.To)
			}
		}
		sp.Ghosts = make([]int, 0, len(ghostSet))
		for v := range ghostSet {
			sp.Ghosts = append(sp.Ghosts, v)
		}
		sort.Ints(sp.Ghosts)
		sp.TotalWeight2 = m2
	})

	// Subscriber lists cross rank boundaries (a ghost on rank r subscribes
	// r to the ghost's owner), so they are built serially from the sorted
	// ghost lists; the final sort makes the content order-independent.
	for r := 0; r < p; r++ {
		for _, v := range parts[r].Ghosts {
			owner := parts[Owner(v, p)]
			owner.Subscribers[v] = append(owner.Subscribers[v], r)
		}
	}
	for r := 0; r < p; r++ {
		for v := range parts[r].Subscribers {
			sort.Ints(parts[r].Subscribers[v])
		}
	}
}

// assignOwned distributes low-degree vertices (round-robin) with their full
// adjacency. The parallel path collects per-(chunk, rank) fragments and
// concatenates them per rank in chunk order — the serial append order.
func assignOwned(g *graph.Graph, parts []*Subgraph, isHub []bool, pool *par.Pool) {
	n := g.NumVertices()
	p := len(parts)
	if pool == nil {
		for u := 0; u < n; u++ {
			if isHub[u] {
				continue
			}
			r := Owner(u, p)
			sp := parts[r]
			sp.Owned = append(sp.Owned, u)
			sp.OwnedWDeg = append(sp.OwnedWDeg, g.WeightedDegree(u))
			ts, ws := g.Neighbors(u)
			adj := make([]Arc, len(ts))
			for i := range ts {
				adj[i] = Arc{To: int(ts[i]), W: ws[i]}
			}
			sp.AdjOwned = append(sp.AdjOwned, adj)
		}
		return
	}
	type ownedFrag struct {
		ids  []int
		wdeg []float64
		adj  [][]Arc
	}
	ncV := par.NumChunks(n)
	frags := make([]ownedFrag, ncV*p)
	pool.ParFor(ncV, func(c, _ int) {
		lo, hi := par.ChunkSpan(n, ncV, c)
		fr := frags[c*p : (c+1)*p]
		for u := lo; u < hi; u++ {
			if isHub[u] {
				continue
			}
			f := &fr[Owner(u, p)]
			f.ids = append(f.ids, u)
			f.wdeg = append(f.wdeg, g.WeightedDegree(u))
			ts, ws := g.Neighbors(u)
			adj := make([]Arc, len(ts))
			for i := range ts {
				adj[i] = Arc{To: int(ts[i]), W: ws[i]}
			}
			f.adj = append(f.adj, adj)
		}
	})
	pool.ParFor(p, func(r, _ int) {
		sp := parts[r]
		total := 0
		for c := 0; c < ncV; c++ {
			total += len(frags[c*p+r].ids)
		}
		if total == 0 {
			return
		}
		sp.Owned = make([]int, 0, total)
		sp.OwnedWDeg = make([]float64, 0, total)
		sp.AdjOwned = make([][]Arc, 0, total)
		for c := 0; c < ncV; c++ {
			f := &frags[c*p+r]
			sp.Owned = append(sp.Owned, f.ids...)
			sp.OwnedWDeg = append(sp.OwnedWDeg, f.wdeg...)
			sp.AdjOwned = append(sp.AdjOwned, f.adj...)
		}
	})
}

// bucketHubArcs routes each hub arc to its target's owner and returns the
// hub→hub spill pool. The parallel path chunks over the hub directory
// (every hub lives in exactly one chunk) and concatenates per-rank
// fragments in chunk order, reproducing the serial (hub, arc) append order
// on every rank and the serial spill order.
func bucketHubArcs(g *graph.Graph, parts []*Subgraph, hubs []int, isHub []bool, pool *par.Pool) []hubArc {
	p := len(parts)
	if pool == nil {
		var spill []hubArc
		for hi, h := range hubs {
			ts, ws := g.Neighbors(h)
			for i := range ts {
				v := int(ts[i])
				if isHub[v] {
					spill = append(spill, hubArc{hub: hi, to: v, w: ws[i]})
					continue
				}
				r := Owner(v, p)
				parts[r].AdjHub[hi] = append(parts[r].AdjHub[hi], Arc{To: v, W: ws[i]})
			}
		}
		return spill
	}
	nh := len(hubs)
	ncH := par.NumChunks(nh)
	rankFrag := make([][]hubArc, ncH*p)
	spillFrag := make([][]hubArc, ncH)
	pool.ParFor(ncH, func(c, _ int) {
		lo, hi := par.ChunkSpan(nh, ncH, c)
		rf := rankFrag[c*p : (c+1)*p]
		var sf []hubArc
		for hidx := lo; hidx < hi; hidx++ {
			ts, ws := g.Neighbors(hubs[hidx])
			for i := range ts {
				v := int(ts[i])
				if isHub[v] {
					sf = append(sf, hubArc{hub: hidx, to: v, w: ws[i]})
					continue
				}
				r := Owner(v, p)
				rf[r] = append(rf[r], hubArc{hub: hidx, to: v, w: ws[i]})
			}
		}
		spillFrag[c] = sf
	})
	pool.ParFor(p, func(r, _ int) {
		sp := parts[r]
		for c := 0; c < ncH; c++ {
			for _, a := range rankFrag[c*p+r] {
				sp.AdjHub[a.hub] = append(sp.AdjHub[a.hub], Arc{To: a.to, W: a.w})
			}
		}
	})
	var spill []hubArc
	for c := 0; c < ncH; c++ {
		spill = append(spill, spillFrag[c]...)
	}
	return spill
}

func minLoadRank(loads []int64) int {
	best := 0
	for r := 1; r < len(loads); r++ {
		if loads[r] < loads[best] {
			best = r
		}
	}
	return best
}

// rebalance moves hub arcs from overloaded to underloaded ranks. Only arcs
// whose source is a hub may move (the source delegate exists everywhere).
func rebalance(parts []*Subgraph, loads []int64) {
	p := len(parts)
	var total int64
	for _, l := range loads {
		total += l
	}
	avg := total / int64(p)
	// Ranks with load > avg+1 donate hub arcs; ranks below avg receive.
	type donation struct {
		hub int
		a   Arc
	}
	var spare []donation
	for r := 0; r < p; r++ {
		sp := parts[r]
		for loads[r] > avg+1 {
			moved := false
			for hi := range sp.AdjHub {
				if len(sp.AdjHub[hi]) == 0 {
					continue
				}
				last := len(sp.AdjHub[hi]) - 1
				spare = append(spare, donation{hub: hi, a: sp.AdjHub[hi][last]})
				sp.AdjHub[hi] = sp.AdjHub[hi][:last]
				loads[r]--
				moved = true
				if loads[r] <= avg+1 {
					break
				}
			}
			if !moved {
				break // nothing left to donate on this rank
			}
		}
	}
	si := 0
	for r := 0; r < p && si < len(spare); r++ {
		for loads[r] < avg && si < len(spare) {
			d := spare[si]
			si++
			parts[r].AdjHub[d.hub] = append(parts[r].AdjHub[d.hub], d.a)
			loads[r]++
		}
	}
	// Any remainder goes to the least-loaded ranks.
	for ; si < len(spare); si++ {
		r := minLoadRank(loads)
		d := spare[si]
		parts[r].AdjHub[d.hub] = append(parts[r].AdjHub[d.hub], d.a)
		loads[r]++
	}
}

// Census reports the per-rank workload and communication measures of a
// layout, matching the paper's Figure 6.
type Census struct {
	ArcsPerRank   []int64
	GhostsPerRank []int
	HubCount      int
}

// Census computes the layout's census.
func (l *Layout) Census() Census {
	c := Census{
		ArcsPerRank:   make([]int64, l.P),
		GhostsPerRank: make([]int, l.P),
		HubCount:      len(l.Hubs),
	}
	for r, sp := range l.Parts {
		c.ArcsPerRank[r] = sp.NumLocalArcs()
		c.GhostsPerRank[r] = len(sp.Ghosts)
	}
	return c
}

// ImbalanceW returns the paper's workload imbalance measure
// W = |E_max| / |E_avg| − 1 over per-rank arc counts.
func (c Census) ImbalanceW() float64 {
	if len(c.ArcsPerRank) == 0 {
		return 0
	}
	var sum, maxv int64
	for _, a := range c.ArcsPerRank {
		sum += a
		if a > maxv {
			maxv = a
		}
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(len(c.ArcsPerRank))
	return float64(maxv)/avg - 1
}

// MaxGhosts returns the maximum per-rank ghost count.
func (c Census) MaxGhosts() int {
	m := 0
	for _, g := range c.GhostsPerRank {
		if g > m {
			m = g
		}
	}
	return m
}

// TotalArcs returns the total arc count across ranks.
func (c Census) TotalArcs() int64 {
	var t int64
	for _, a := range c.ArcsPerRank {
		t += a
	}
	return t
}
