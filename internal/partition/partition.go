// Package partition implements the graph partitioning strategies of the
// paper: plain 1D round-robin partitioning and the distributed delegate
// partitioning extended from Pearce et al.
//
// Delegate partitioning duplicates high-degree vertices ("hubs", degree >=
// DHigh) on every rank. Arcs whose source is a low-degree vertex go to the
// source's owner (so an owner always sees its vertex's complete adjacency);
// arcs whose source is a hub initially go to the target's owner and are then
// rebalanced freely across ranks until every rank holds ≈ |arcs|/p arcs.
//
// The package also produces the per-rank census (arc counts, ghost counts,
// workload imbalance W = max/avg − 1) that the paper reports in Figure 6.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Kind selects the partitioning strategy.
type Kind int

const (
	// Delegate duplicates hubs on all ranks and rebalances hub arcs,
	// following Pearce et al. as extended by the paper. It is the zero
	// value: the paper's method is the default everywhere.
	Delegate Kind = iota
	// OneD is round-robin 1D partitioning: vertex v and all its arcs are
	// owned by rank v mod p. This is the baseline the paper compares
	// against (Cheong-style distributed Louvain).
	OneD
)

func (k Kind) String() string {
	switch k {
	case OneD:
		return "1d"
	case Delegate:
		return "delegate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Arc is one directed arc of a local subgraph, in global vertex IDs.
type Arc struct {
	To int
	W  float64
}

// Subgraph is the portion of the graph materialized on one rank.
//
// Owned lists the low-degree vertices owned by this rank (every global
// vertex that is not a hub appears in exactly one rank's Owned, including
// isolated vertices). Hubs lists all hub vertices; the list is identical on
// every rank, but AdjHub holds only this rank's share of each hub's arcs.
type Subgraph struct {
	Rank int
	P    int

	// GlobalVertices is the vertex count of the global graph this subgraph
	// was cut from (vertex IDs are < GlobalVertices).
	GlobalVertices int

	Owned    []int   // sorted global IDs of owned low-degree vertices
	AdjOwned [][]Arc // complete adjacency of each owned vertex

	Hubs    []int     // sorted global hub IDs (same on all ranks)
	HubWDeg []float64 // global weighted degree of each hub
	AdjHub  [][]Arc   // this rank's share of each hub's arcs

	Ghosts []int // sorted global IDs of non-local, non-hub arc targets

	// Subscribers maps an owned vertex to the set of other ranks holding it
	// as a ghost; the owner pushes community updates to these ranks.
	Subscribers map[int][]int

	// OwnedWDeg is the weighted degree of each owned vertex (parallel to
	// Owned). For owned vertices the local adjacency is complete, so this
	// equals the global weighted degree.
	OwnedWDeg []float64

	// TotalWeight2 is the global 2m, shared by all ranks.
	TotalWeight2 float64
}

// NumLocalArcs returns the number of arcs stored on this rank.
func (s *Subgraph) NumLocalArcs() int64 {
	var n int64
	for _, a := range s.AdjOwned {
		n += int64(len(a))
	}
	for _, a := range s.AdjHub {
		n += int64(len(a))
	}
	return n
}

// Options configures Build.
type Options struct {
	P     int  // number of ranks, >= 1
	Kind  Kind // OneD or Delegate
	DHigh int  // hub degree threshold; <= 0 means DHigh = P (the paper's setting)
}

// Layout is a full partitioning of a graph: one Subgraph per rank plus the
// global hub directory.
type Layout struct {
	P     int
	Kind  Kind
	DHigh int
	Hubs  []int
	Parts []*Subgraph
}

// Owner returns the owning rank of a low-degree (non-hub) vertex.
func Owner(v, p int) int { return v % p }

// Build partitions g across opt.P ranks.
func Build(g *graph.Graph, opt Options) (*Layout, error) {
	if opt.P < 1 {
		return nil, fmt.Errorf("partition: P = %d, want >= 1", opt.P)
	}
	dhigh := opt.DHigh
	if dhigh <= 0 {
		dhigh = opt.P
	}
	p := opt.P
	n := g.NumVertices()

	// Identify hubs.
	isHub := make([]bool, n)
	var hubs []int
	if opt.Kind == Delegate {
		for u := 0; u < n; u++ {
			if g.Degree(u) >= dhigh {
				isHub[u] = true
				hubs = append(hubs, u)
			}
		}
	}
	hubIndex := make(map[int]int, len(hubs))
	for i, h := range hubs {
		hubIndex[h] = i
	}

	parts := make([]*Subgraph, p)
	for r := 0; r < p; r++ {
		parts[r] = &Subgraph{
			Rank: r, P: p,
			GlobalVertices: n,
			Hubs:           hubs,
			Subscribers:    make(map[int][]int),
		}
		if len(hubs) > 0 {
			parts[r].HubWDeg = make([]float64, len(hubs))
			parts[r].AdjHub = make([][]Arc, len(hubs))
			for i, h := range hubs {
				parts[r].HubWDeg[i] = g.WeightedDegree(h)
			}
		}
	}

	// Assign owned low vertices (round-robin) with their full adjacency.
	for u := 0; u < n; u++ {
		if isHub[u] {
			continue
		}
		r := Owner(u, p)
		sp := parts[r]
		sp.Owned = append(sp.Owned, u)
		sp.OwnedWDeg = append(sp.OwnedWDeg, g.WeightedDegree(u))
		ts, ws := g.Neighbors(u)
		adj := make([]Arc, len(ts))
		for i := range ts {
			adj[i] = Arc{To: int(ts[i]), W: ws[i]}
		}
		sp.AdjOwned = append(sp.AdjOwned, adj)
	}

	// Assign hub arcs. Initially each hub arc (h, v) goes to the owner of
	// its target (co-locating delegate and target); hub→hub arcs go to a
	// spill pool for balancing; then a correction pass moves hub arcs from
	// overloaded to underloaded ranks.
	if opt.Kind == Delegate && len(hubs) > 0 {
		loads := make([]int64, p)
		for r := 0; r < p; r++ {
			loads[r] = parts[r].NumLocalArcs()
		}
		type hubArc struct {
			hub int // index into hubs
			to  int
			w   float64
		}
		var pool []hubArc // arcs free to place anywhere (hub→hub)
		for _, h := range hubs {
			hi := hubIndex[h]
			ts, ws := g.Neighbors(h)
			for i := range ts {
				v := int(ts[i])
				if isHub[v] {
					pool = append(pool, hubArc{hub: hi, to: v, w: ws[i]})
					continue
				}
				r := Owner(v, p)
				parts[r].AdjHub[hi] = append(parts[r].AdjHub[hi], Arc{To: v, W: ws[i]})
				loads[r]++
			}
		}
		// Place pool arcs on the currently least-loaded ranks.
		for _, a := range pool {
			r := minLoadRank(loads)
			parts[r].AdjHub[a.hub] = append(parts[r].AdjHub[a.hub], Arc{To: a.to, W: a.w})
			loads[r]++
		}
		// Correction pass: move hub→low arcs from overloaded ranks to
		// underloaded ones until loads are within one arc of the average.
		rebalance(parts, loads)
	}

	// Ghost discovery and subscriber lists from the final arc placement.
	for r := 0; r < p; r++ {
		sp := parts[r]
		ghostSet := make(map[int]struct{})
		note := func(v int) {
			if isHub[v] || Owner(v, p) == r {
				return
			}
			ghostSet[v] = struct{}{}
		}
		for _, adj := range sp.AdjOwned {
			for _, a := range adj {
				note(a.To)
			}
		}
		for _, adj := range sp.AdjHub {
			for _, a := range adj {
				note(a.To)
			}
		}
		sp.Ghosts = make([]int, 0, len(ghostSet))
		for v := range ghostSet {
			sp.Ghosts = append(sp.Ghosts, v)
		}
		sort.Ints(sp.Ghosts)
		for _, v := range sp.Ghosts {
			owner := parts[Owner(v, p)]
			owner.Subscribers[v] = append(owner.Subscribers[v], r)
		}
		sp.TotalWeight2 = g.TotalWeight2()
	}
	for r := 0; r < p; r++ {
		for v := range parts[r].Subscribers {
			sort.Ints(parts[r].Subscribers[v])
		}
	}

	return &Layout{P: p, Kind: opt.Kind, DHigh: dhigh, Hubs: hubs, Parts: parts}, nil
}

func minLoadRank(loads []int64) int {
	best := 0
	for r := 1; r < len(loads); r++ {
		if loads[r] < loads[best] {
			best = r
		}
	}
	return best
}

// rebalance moves hub arcs from overloaded to underloaded ranks. Only arcs
// whose source is a hub may move (the source delegate exists everywhere).
func rebalance(parts []*Subgraph, loads []int64) {
	p := len(parts)
	var total int64
	for _, l := range loads {
		total += l
	}
	avg := total / int64(p)
	// Ranks with load > avg+1 donate hub arcs; ranks below avg receive.
	type donation struct {
		hub int
		a   Arc
	}
	var spare []donation
	for r := 0; r < p; r++ {
		sp := parts[r]
		for loads[r] > avg+1 {
			moved := false
			for hi := range sp.AdjHub {
				if len(sp.AdjHub[hi]) == 0 {
					continue
				}
				last := len(sp.AdjHub[hi]) - 1
				spare = append(spare, donation{hub: hi, a: sp.AdjHub[hi][last]})
				sp.AdjHub[hi] = sp.AdjHub[hi][:last]
				loads[r]--
				moved = true
				if loads[r] <= avg+1 {
					break
				}
			}
			if !moved {
				break // nothing left to donate on this rank
			}
		}
	}
	si := 0
	for r := 0; r < p && si < len(spare); r++ {
		for loads[r] < avg && si < len(spare) {
			d := spare[si]
			si++
			parts[r].AdjHub[d.hub] = append(parts[r].AdjHub[d.hub], d.a)
			loads[r]++
		}
	}
	// Any remainder goes to the least-loaded ranks.
	for ; si < len(spare); si++ {
		r := minLoadRank(loads)
		d := spare[si]
		parts[r].AdjHub[d.hub] = append(parts[r].AdjHub[d.hub], d.a)
		loads[r]++
	}
}

// Census reports the per-rank workload and communication measures of a
// layout, matching the paper's Figure 6.
type Census struct {
	ArcsPerRank   []int64
	GhostsPerRank []int
	HubCount      int
}

// Census computes the layout's census.
func (l *Layout) Census() Census {
	c := Census{
		ArcsPerRank:   make([]int64, l.P),
		GhostsPerRank: make([]int, l.P),
		HubCount:      len(l.Hubs),
	}
	for r, sp := range l.Parts {
		c.ArcsPerRank[r] = sp.NumLocalArcs()
		c.GhostsPerRank[r] = len(sp.Ghosts)
	}
	return c
}

// ImbalanceW returns the paper's workload imbalance measure
// W = |E_max| / |E_avg| − 1 over per-rank arc counts.
func (c Census) ImbalanceW() float64 {
	if len(c.ArcsPerRank) == 0 {
		return 0
	}
	var sum, maxv int64
	for _, a := range c.ArcsPerRank {
		sum += a
		if a > maxv {
			maxv = a
		}
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(len(c.ArcsPerRank))
	return float64(maxv)/avg - 1
}

// MaxGhosts returns the maximum per-rank ghost count.
func (c Census) MaxGhosts() int {
	m := 0
	for _, g := range c.GhostsPerRank {
		if g > m {
			m = g
		}
	}
	return m
}

// TotalArcs returns the total arc count across ranks.
func (c Census) TotalArcs() int64 {
	var t int64
	for _, a := range c.ArcsPerRank {
		t += a
	}
	return t
}
