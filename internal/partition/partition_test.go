package partition

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func star(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = graph.Edge{U: 0, V: i + 1, W: 1}
	}
	g, err := graph.FromEdges(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// allArcs flattens a layout's arcs into (src, dst, w) triples.
func allArcs(l *Layout) [][3]float64 {
	var out [][3]float64
	for _, sp := range l.Parts {
		for i, u := range sp.Owned {
			for _, a := range sp.AdjOwned[i] {
				out = append(out, [3]float64{float64(u), float64(a.To), a.W})
			}
		}
		for i, h := range sp.Hubs {
			for _, a := range sp.AdjHub[i] {
				out = append(out, [3]float64{float64(h), float64(a.To), a.W})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		if out[i][1] != out[j][1] {
			return out[i][1] < out[j][1]
		}
		return out[i][2] < out[j][2]
	})
	return out
}

func graphArcs(g *graph.Graph) [][3]float64 {
	var out [][3]float64
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			out = append(out, [3]float64{float64(u), float64(g.ArcTarget(a)), g.ArcWeight(a)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		if out[i][1] != out[j][1] {
			return out[i][1] < out[j][1]
		}
		return out[i][2] < out[j][2]
	})
	return out
}

func checkArcConservation(t *testing.T, g *graph.Graph, l *Layout) {
	t.Helper()
	got := allArcs(l)
	want := graphArcs(g)
	if len(got) != len(want) {
		t.Fatalf("arc count: layout %d, graph %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arc %d: layout %v, graph %v", i, got[i], want[i])
		}
	}
}

func TestOneDConservesArcs(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7} {
		l, err := Build(g, Options{P: p, Kind: OneD})
		if err != nil {
			t.Fatal(err)
		}
		checkArcConservation(t, g, l)
		if len(l.Hubs) != 0 {
			t.Errorf("p=%d: 1D layout has hubs", p)
		}
	}
}

func TestDelegateConservesArcs(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 5} {
		l, err := Build(g, Options{P: p, Kind: Delegate})
		if err != nil {
			t.Fatal(err)
		}
		checkArcConservation(t, g, l)
	}
}

func TestEachLowVertexOwnedOnce(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	l, err := Build(g, Options{P: p, Kind: Delegate})
	if err != nil {
		t.Fatal(err)
	}
	hubSet := make(map[int]bool)
	for _, h := range l.Hubs {
		hubSet[h] = true
	}
	seen := make(map[int]int)
	for _, sp := range l.Parts {
		for _, u := range sp.Owned {
			seen[u]++
			if hubSet[u] {
				t.Errorf("hub %d appears in Owned", u)
			}
			if Owner(u, p) != sp.Rank {
				t.Errorf("vertex %d owned by rank %d, want %d", u, sp.Rank, Owner(u, p))
			}
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		if hubSet[u] {
			continue
		}
		if seen[u] != 1 {
			t.Errorf("low vertex %d owned %d times", u, seen[u])
		}
	}
}

func TestOwnedAdjacencyComplete(t *testing.T) {
	// The owner of a low vertex must see its entire neighborhood.
	g, err := gen.RMAT(gen.Graph500RMAT(7, 9))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 3, Kind: Delegate})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range l.Parts {
		for i, u := range sp.Owned {
			if len(sp.AdjOwned[i]) != g.Degree(u) {
				t.Errorf("vertex %d: local adjacency %d, degree %d", u, len(sp.AdjOwned[i]), g.Degree(u))
			}
			if sp.OwnedWDeg[i] != g.WeightedDegree(u) {
				t.Errorf("vertex %d: OwnedWDeg %g, want %g", u, sp.OwnedWDeg[i], g.WeightedDegree(u))
			}
		}
	}
}

func TestHubThresholdRespected(t *testing.T) {
	g := star(t, 40)
	l, err := Build(g, Options{P: 4, Kind: Delegate, DHigh: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Hubs) != 1 || l.Hubs[0] != 0 {
		t.Fatalf("Hubs = %v, want [0]", l.Hubs)
	}
	if l.DHigh != 10 {
		t.Errorf("DHigh = %d", l.DHigh)
	}
	// default threshold = P
	l, err = Build(g, Options{P: 4, Kind: Delegate})
	if err != nil {
		t.Fatal(err)
	}
	if l.DHigh != 4 {
		t.Errorf("default DHigh = %d, want 4", l.DHigh)
	}
}

func TestDelegateBalancesStar(t *testing.T) {
	// One giant hub: 1D piles every arc onto the hub owner; delegate
	// partitioning must spread them out.
	g := star(t, 1000)
	p := 8
	oneD, err := Build(g, Options{P: p, Kind: OneD})
	if err != nil {
		t.Fatal(err)
	}
	del, err := Build(g, Options{P: p, Kind: Delegate, DHigh: 100})
	if err != nil {
		t.Fatal(err)
	}
	w1 := oneD.Census().ImbalanceW()
	wd := del.Census().ImbalanceW()
	if w1 < 2 {
		t.Errorf("1D imbalance W = %.2f, expected severe (>2)", w1)
	}
	if wd > 0.1 {
		t.Errorf("delegate imbalance W = %.2f, expected ~0", wd)
	}
}

func TestDelegateImbalanceOnScaleFree(t *testing.T) {
	g, err := gen.BarabasiAlbert(2000, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, 8, 16} {
		oneD, err := Build(g, Options{P: p, Kind: OneD})
		if err != nil {
			t.Fatal(err)
		}
		del, err := Build(g, Options{P: p, Kind: Delegate})
		if err != nil {
			t.Fatal(err)
		}
		w1 := oneD.Census().ImbalanceW()
		wd := del.Census().ImbalanceW()
		if wd > w1 {
			t.Errorf("p=%d: delegate W %.3f worse than 1D W %.3f", p, wd, w1)
		}
		if wd > 0.05 {
			t.Errorf("p=%d: delegate W = %.3f, want near 0", p, wd)
		}
	}
}

func TestGhostsAndSubscribersConsistent(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	for _, kind := range []Kind{OneD, Delegate} {
		l, err := Build(g, Options{P: p, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		hubSet := make(map[int]bool)
		for _, h := range l.Hubs {
			hubSet[h] = true
		}
		for _, sp := range l.Parts {
			// every ghost is a low vertex owned elsewhere
			for _, v := range sp.Ghosts {
				if hubSet[v] {
					t.Errorf("%v rank %d: hub %d listed as ghost", kind, sp.Rank, v)
				}
				if Owner(v, p) == sp.Rank {
					t.Errorf("%v rank %d: owns its ghost %d", kind, sp.Rank, v)
				}
				// owner must list this rank as subscriber
				owner := l.Parts[Owner(v, p)]
				found := false
				for _, s := range owner.Subscribers[v] {
					if s == sp.Rank {
						found = true
					}
				}
				if !found {
					t.Errorf("%v: rank %d ghost %d missing from owner subscribers", kind, sp.Rank, v)
				}
			}
			// every arc target is local (owned or hub) or a listed ghost
			ghostSet := make(map[int]bool)
			for _, v := range sp.Ghosts {
				ghostSet[v] = true
			}
			check := func(v int) {
				if hubSet[v] || Owner(v, p) == sp.Rank || ghostSet[v] {
					return
				}
				t.Errorf("%v rank %d: arc target %d is neither local nor ghost", kind, sp.Rank, v)
			}
			for _, adj := range sp.AdjOwned {
				for _, a := range adj {
					check(a.To)
				}
			}
			for _, adj := range sp.AdjHub {
				for _, a := range adj {
					check(a.To)
				}
			}
		}
	}
}

func TestSingleRankLayout(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 1, Kind: Delegate})
	if err != nil {
		t.Fatal(err)
	}
	sp := l.Parts[0]
	if len(sp.Ghosts) != 0 {
		t.Errorf("single rank has %d ghosts", len(sp.Ghosts))
	}
	if sp.NumLocalArcs() != g.NumArcs() {
		t.Errorf("arcs %d, want %d", sp.NumLocalArcs(), g.NumArcs())
	}
}

func TestBuildInvalidP(t *testing.T) {
	g := star(t, 3)
	if _, err := Build(g, Options{P: 0, Kind: OneD}); err == nil {
		t.Fatal("expected error for P = 0")
	}
}

func TestCensusMeasures(t *testing.T) {
	c := Census{ArcsPerRank: []int64{10, 20, 30}, GhostsPerRank: []int{1, 5, 3}}
	if got := c.ImbalanceW(); got != 0.5 {
		t.Errorf("ImbalanceW = %g, want 0.5 (30/20 - 1)", got)
	}
	if got := c.MaxGhosts(); got != 5 {
		t.Errorf("MaxGhosts = %d, want 5", got)
	}
	if got := c.TotalArcs(); got != 60 {
		t.Errorf("TotalArcs = %d, want 60", got)
	}
	empty := Census{}
	if empty.ImbalanceW() != 0 {
		t.Error("empty census W != 0")
	}
}

func TestKindString(t *testing.T) {
	if OneD.String() != "1d" || Delegate.String() != "delegate" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind.String broken")
	}
}

func TestGhostReductionWithMoreRanks(t *testing.T) {
	// Figure 6(d): with delegate partitioning the max ghost count should
	// not explode as p grows (hubs are delegated, not ghosted).
	g, err := gen.BarabasiAlbert(3000, 5, 23)
	if err != nil {
		t.Fatal(err)
	}
	var prev int
	for i, p := range []int{4, 16} {
		// Pin DHigh so the hub set is identical at both processor counts.
		l, err := Build(g, Options{P: p, Kind: Delegate, DHigh: 50})
		if err != nil {
			t.Fatal(err)
		}
		mg := l.Census().MaxGhosts()
		if i == 1 && prev > 0 && mg > prev {
			t.Errorf("max ghosts should shrink with p: p=4 %d → p=16 %d", prev, mg)
		}
		prev = mg
	}
}

func TestIsolatedVerticesStayOwned(t *testing.T) {
	g, err := graph.FromEdges(10, []graph.Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 3, Kind: Delegate})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, sp := range l.Parts {
		count += len(sp.Owned)
	}
	if count != 10 {
		t.Errorf("owned %d vertices, want all 10 (isolated vertices must not vanish)", count)
	}
}

func ExampleCensus_ImbalanceW() {
	c := Census{ArcsPerRank: []int64{100, 100, 100, 100}}
	fmt.Printf("W = %.2f\n", c.ImbalanceW())
	// Output: W = 0.00
}

func TestRebalanceHandlesHubOnlyGraph(t *testing.T) {
	// A clique where every vertex is a hub: all arcs are in the movable
	// pool and must still be conserved and balanced.
	n := 20
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 4, Kind: Delegate, DHigh: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Hubs) != n {
		t.Fatalf("hubs = %d, want all %d", len(l.Hubs), n)
	}
	checkArcConservation(t, g, l)
	if w := l.Census().ImbalanceW(); w > 0.05 {
		t.Errorf("W = %.3f on a fully-movable graph", w)
	}
	// No vertex is owned; nothing may be lost.
	for _, sp := range l.Parts {
		if len(sp.Owned) != 0 {
			t.Errorf("rank %d owns %d vertices in an all-hub graph", sp.Rank, len(sp.Owned))
		}
	}
}

func TestDelegateMoreRanksThanArcs(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 8, Kind: Delegate, DHigh: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkArcConservation(t, g, l)
	if got := l.Census().TotalArcs(); got != g.NumArcs() {
		t.Errorf("TotalArcs = %d, want %d", got, g.NumArcs())
	}
}

func TestDHighAboveMaxDegreeMeansNoHubs(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 4, Kind: Delegate, DHigh: g.MaxDegree() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Hubs) != 0 {
		t.Errorf("hubs = %d, want 0", len(l.Hubs))
	}
	// Degenerates to 1D: same census as OneD.
	oneD, err := Build(g, Options{P: 4, Kind: OneD})
	if err != nil {
		t.Fatal(err)
	}
	cd, c1 := l.Census(), oneD.Census()
	for r := range cd.ArcsPerRank {
		if cd.ArcsPerRank[r] != c1.ArcsPerRank[r] {
			t.Errorf("rank %d arcs differ from 1D: %d vs %d", r, cd.ArcsPerRank[r], c1.ArcsPerRank[r])
		}
	}
}

func TestSelfLoopArcsStayWithOwner(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{{U: 2, V: 2, W: 3}, {U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, Options{P: 3, Kind: Delegate})
	if err != nil {
		t.Fatal(err)
	}
	checkArcConservation(t, g, l)
	// Vertex 2's self-loop lives on its owner (rank 2).
	sp := l.Parts[2]
	found := false
	for i, u := range sp.Owned {
		if u != 2 {
			continue
		}
		for _, a := range sp.AdjOwned[i] {
			if a.To == 2 && a.W == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Error("self-loop arc missing from owner")
	}
}
