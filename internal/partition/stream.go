package partition

// Streaming two-pass Build over a sharded graph file: the out-of-core
// alternative to Build(g, …) that never materializes the global CSR.
//
// Pass A scans shard windows to collect per-vertex degrees and weighted
// degrees (O(n) state, not O(arcs)), from which the hub directory and 2m
// follow. Pass B re-scans the windows and emits every arc directly into
// its rank's subgraph. Both passes visit vertices in ascending order
// (shards are ascending vertex ranges), and the parallel paths combine
// per-chunk fragments in chunk order — exactly the discipline the in-RAM
// Build uses — so the resulting Layout is bit-identical to
// Build(s.ReadAll(…), …) at every worker count, down to the float
// summation order of the weighted degrees (per-vertex sums accumulate in
// arc order, 2m accumulates per-vertex sums in vertex order, matching the
// CSR builder's finish pass).
//
// Peak memory is the O(n) degree arrays plus the emitted Layout plus one
// decoded shard window per worker — flat in total |E| for a fixed layout
// size per rank, which is the point: generate → partition → solve never
// needs the arcs in one block.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
)

// BuildStreaming partitions an opened sharded graph across opt.P ranks by
// scanning its shard windows twice, without decoding the whole file at
// once. The Layout is bit-identical to Build of the same graph with the
// same Options.
func BuildStreaming(s *graph.Sharded, opt Options) (*Layout, error) {
	if opt.P < 1 {
		return nil, fmt.Errorf("partition: P = %d, want >= 1", opt.P)
	}
	dhigh := opt.DHigh
	if dhigh <= 0 {
		dhigh = opt.P
	}
	p := opt.P
	n := s.NumVertices()
	nShards := s.NumShards()
	nw := opt.Workers
	if nw == 0 {
		nw = par.DefaultWorkers(1)
	}
	pool := par.NewPool(nw)
	defer pool.Close()

	// Pass A: per-vertex degree and weighted degree from shard windows.
	// Shards cover disjoint ascending vertex ranges, so chunked workers
	// write disjoint slices of the arrays.
	deg := make([]int32, n)
	wdeg := make([]float64, n)
	ncS := par.NumChunks(nShards)
	errsA := make([]error, ncS)
	pool.ParFor(ncS, func(c, _ int) {
		lo, hi := par.ChunkSpan(nShards, ncS, c)
		for i := lo; i < hi; i++ {
			w, err := s.ReadWindow(i)
			if err != nil {
				errsA[c] = err
				return
			}
			for u := w.Lo; u < w.Hi; u++ {
				_, ws := w.Arcs(u)
				deg[u] = int32(len(ws))
				k := 0.0
				for _, x := range ws {
					k += x
				}
				wdeg[u] = k
			}
		}
	})
	for _, err := range errsA {
		if err != nil {
			return nil, err
		}
	}
	m2 := 0.0
	for u := 0; u < n; u++ {
		m2 += wdeg[u]
	}

	isHub := make([]bool, n)
	var hubs []int
	if opt.Kind == Delegate {
		hubs = findHubs(n, dhigh, func(u int) int { return int(deg[u]) }, isHub, pool)
	}
	// hubIdx[u] is u's position in the hub directory, so pass B can route
	// a hub's arcs without a directory search per vertex.
	var hubIdx []int32
	if len(hubs) > 0 {
		hubIdx = make([]int32, n)
		for i, h := range hubs {
			hubIdx[h] = int32(i)
		}
	}

	parts := newParts(p, n, hubs, func(u int) float64 { return wdeg[u] }, pool)

	// Pass B: emit every arc from its shard window. Owned vertices carry
	// their complete adjacency to their round-robin owner; hub arcs go to
	// the target's owner (hub→hub arcs to the spill pool). Per-(chunk,
	// rank) fragments concatenate in chunk order, reproducing the serial
	// ascending-vertex append order on every rank.
	type ownedFrag struct {
		ids  []int
		wdeg []float64
		adj  [][]Arc
	}
	ownedFrags := make([]ownedFrag, ncS*p)
	rankFrag := make([][]hubArc, ncS*p)
	spillFrag := make([][]hubArc, ncS)
	errsB := make([]error, ncS)
	pool.ParFor(ncS, func(c, _ int) {
		lo, hi := par.ChunkSpan(nShards, ncS, c)
		of := ownedFrags[c*p : (c+1)*p]
		rf := rankFrag[c*p : (c+1)*p]
		var sf []hubArc
		for i := lo; i < hi; i++ {
			w, err := s.ReadWindow(i)
			if err != nil {
				errsB[c] = err
				return
			}
			for u := w.Lo; u < w.Hi; u++ {
				ts, ws := w.Arcs(u)
				if isHub[u] {
					hid := int(hubIdx[u])
					for k := range ts {
						v := int(ts[k])
						if isHub[v] {
							sf = append(sf, hubArc{hub: hid, to: v, w: ws[k]})
							continue
						}
						r := Owner(v, p)
						rf[r] = append(rf[r], hubArc{hub: hid, to: v, w: ws[k]})
					}
					continue
				}
				f := &of[Owner(u, p)]
				f.ids = append(f.ids, u)
				f.wdeg = append(f.wdeg, wdeg[u])
				adj := make([]Arc, len(ts))
				for k := range ts {
					adj[k] = Arc{To: int(ts[k]), W: ws[k]}
				}
				f.adj = append(f.adj, adj)
			}
		}
		spillFrag[c] = sf
	})
	for _, err := range errsB {
		if err != nil {
			return nil, err
		}
	}

	pool.ParFor(p, func(r, _ int) {
		sp := parts[r]
		total := 0
		for c := 0; c < ncS; c++ {
			total += len(ownedFrags[c*p+r].ids)
		}
		if total > 0 {
			sp.Owned = make([]int, 0, total)
			sp.OwnedWDeg = make([]float64, 0, total)
			sp.AdjOwned = make([][]Arc, 0, total)
			for c := 0; c < ncS; c++ {
				f := &ownedFrags[c*p+r]
				sp.Owned = append(sp.Owned, f.ids...)
				sp.OwnedWDeg = append(sp.OwnedWDeg, f.wdeg...)
				sp.AdjOwned = append(sp.AdjOwned, f.adj...)
			}
		}
		for c := 0; c < ncS; c++ {
			for _, a := range rankFrag[c*p+r] {
				sp.AdjHub[a.hub] = append(sp.AdjHub[a.hub], Arc{To: a.to, W: a.w})
			}
		}
	})

	if opt.Kind == Delegate && len(hubs) > 0 {
		var spill []hubArc
		for c := 0; c < ncS; c++ {
			spill = append(spill, spillFrag[c]...)
		}
		placeHubArcs(parts, spill)
	}

	finishLayout(parts, isHub, m2, pool)

	return &Layout{P: p, Kind: opt.Kind, DHigh: dhigh, Hubs: hubs, Parts: parts}, nil
}
