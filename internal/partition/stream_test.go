package partition

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// streamGraphs returns the bit-identity test corpus: the golden e2e
// fixture graph and an R-MAT instance (hub-heavy, duplicate-edge-summed
// weights), per the acceptance criteria.
func streamGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	f, err := os.Open("../core/testdata/golden/graph.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	golden, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := gen.RMAT(gen.Graph500RMAT(12, 6))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"golden": golden, "rmat12": rmat}
}

// TestStreamingBuildMatchesInRAM is the tentpole acceptance test: the
// streaming two-pass Build over a sharded file must produce a Layout
// bit-identical to the in-RAM Build of the decoded graph — golden + R-MAT
// × both partitionings × worker counts × shard counts × both shard format
// versions, including the float bit patterns of every weight and 2m.
func TestStreamingBuildMatchesInRAM(t *testing.T) {
	for name, g := range streamGraphs(t) {
		for _, ver := range []int{1, 2} {
			for _, shards := range []int{1, 7, 32} {
				var buf bytes.Buffer
				var err error
				if ver == 1 {
					err = graph.WriteBinarySharded(&buf, g, shards)
				} else {
					err = graph.WriteBinaryShardedV2(&buf, g, shards)
				}
				if err != nil {
					t.Fatal(err)
				}
				s, err := graph.OpenSharded(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
				if err != nil {
					t.Fatal(err)
				}
				for _, kind := range []Kind{Delegate, OneD} {
					for _, p := range []int{1, 2, 4} {
						for _, workers := range []int{1, 4} {
							opt := Options{P: p, Kind: kind, Workers: workers}
							want, err := Build(g, opt)
							if err != nil {
								t.Fatal(err)
							}
							got, err := BuildStreaming(s, opt)
							if err != nil {
								t.Fatalf("%s v%d shards=%d %v p=%d w=%d: %v",
									name, ver, shards, kind, p, workers, err)
							}
							if diff := layoutsIdentical(want, got); diff != "" {
								t.Fatalf("%s v%d shards=%d %v p=%d w=%d: streaming diverged: %s",
									name, ver, shards, kind, p, workers, diff)
							}
						}
					}
				}
			}
		}
	}
}

// TestStreamingBuildWorkerDeterminism pins the streaming path's own
// worker-count contract, independent of the in-RAM comparison.
func TestStreamingBuildWorkerDeterminism(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteBinaryShardedV2(&buf, g, 9); err != nil {
		t.Fatal(err)
	}
	s, err := graph.OpenSharded(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Delegate, OneD} {
		base, err := BuildStreaming(s, Options{P: 4, Kind: kind, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range buildWorkerCounts[1:] {
			l, err := BuildStreaming(s, Options{P: 4, Kind: kind, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if diff := layoutsIdentical(base, l); diff != "" {
				t.Fatalf("%v workers=%d: %s", kind, w, diff)
			}
		}
	}
}

func TestStreamingBuildErrors(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteBinaryShardedV2(&buf, g, 3); err != nil {
		t.Fatal(err)
	}
	s, err := graph.OpenSharded(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildStreaming(s, Options{P: 0}); err == nil {
		t.Error("P=0: expected error")
	}
	// A payload corrupted after OpenSharded's index validation must surface
	// as a decode error from the windowed passes, not a panic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)-1] ^= 0xff
	sb, err := graph.OpenSharded(bytes.NewReader(bad), int64(len(bad)))
	if err == nil {
		if _, err := BuildStreaming(sb, Options{P: 2}); err == nil {
			t.Error("corrupt payload: expected error")
		}
	}
}
