// Package quality implements the clustering-quality measures reported in the
// paper's Table II: Normalized Mutual Information (NMI), F-measure, the
// normalized Van Dongen metric (NVD), the Rand Index (RI), the Adjusted Rand
// Index (ARI), and the Jaccard Index (JI).
//
// All measures compare a detected membership against a reference (ground
// truth) membership over the same vertex set. Except for NVD, higher is
// better; NVD is a distance (lower is better).
package quality

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Scores bundles all Table II measures.
type Scores struct {
	NMI      float64
	FMeasure float64
	NVD      float64
	RI       float64
	ARI      float64
	JI       float64
}

// contingency is the joint count table between two memberships.
type contingency struct {
	n     int
	table map[[2]int]int // (a-label, b-label) → count
	rows  map[int]int    // a-label → count
	cols  map[int]int    // b-label → count
}

// sortedLabels returns the keys of counts in ascending order. Every float
// accumulation below iterates labels in this order: float addition is not
// associative and Go randomizes map iteration, so summing in map order
// would make the reported metrics differ in the last bits run to run (the
// maporder analyzer flags exactly that).
func sortedLabels(counts map[int]int) []int {
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedCells returns the joint table's keys in row-major order, for the
// same reproducibility reason as sortedLabels.
func (c *contingency) sortedCells() [][2]int {
	cells := make([][2]int, 0, len(c.table))
	for k := range c.table {
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i][0] != cells[j][0] {
			return cells[i][0] < cells[j][0]
		}
		return cells[i][1] < cells[j][1]
	})
	return cells
}

func buildContingency(a, b graph.Membership) (*contingency, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("quality: membership lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("quality: empty memberships")
	}
	c := &contingency{
		n:     len(a),
		table: make(map[[2]int]int),
		rows:  make(map[int]int),
		cols:  make(map[int]int),
	}
	for i := range a {
		c.table[[2]int{a[i], b[i]}]++
		c.rows[a[i]]++
		c.cols[b[i]]++
	}
	return c, nil
}

// Compare computes all measures between detected and truth.
func Compare(detected, truth graph.Membership) (Scores, error) {
	c, err := buildContingency(detected, truth)
	if err != nil {
		return Scores{}, err
	}
	return Scores{
		NMI:      c.nmi(),
		FMeasure: c.fMeasure(),
		NVD:      c.nvd(),
		RI:       c.randIndex(),
		ARI:      c.adjustedRand(),
		JI:       c.jaccard(),
	}, nil
}

// NMI returns the normalized mutual information with arithmetic-mean
// normalization: NMI = 2·I(A;B) / (H(A)+H(B)). Both memberships identical
// gives 1; independent labelings give ≈ 0. If both partitions are trivial
// (single cluster each), NMI is defined as 1.
func NMI(a, b graph.Membership) (float64, error) {
	c, err := buildContingency(a, b)
	if err != nil {
		return 0, err
	}
	return c.nmi(), nil
}

func (c *contingency) nmi() float64 {
	n := float64(c.n)
	var ha, hb, mi float64
	for _, lbl := range sortedLabels(c.rows) {
		p := float64(c.rows[lbl]) / n
		ha -= p * math.Log(p)
	}
	for _, lbl := range sortedLabels(c.cols) {
		p := float64(c.cols[lbl]) / n
		hb -= p * math.Log(p)
	}
	for _, key := range c.sortedCells() {
		pij := float64(c.table[key]) / n
		pi := float64(c.rows[key[0]]) / n
		pj := float64(c.cols[key[1]]) / n
		mi += pij * math.Log(pij/(pi*pj))
	}
	if ha+hb == 0 {
		return 1 // both partitions trivial and identical
	}
	v := 2 * mi / (ha + hb)
	// clamp numerical noise
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// fMeasure computes the symmetric average best-match F1: for each reference
// community, the best F1 over detected communities, size-weighted, averaged
// in both directions.
func (c *contingency) fMeasure() float64 {
	return (c.directedF(true) + c.directedF(false)) / 2
}

func (c *contingency) directedF(rowsAsTruth bool) float64 {
	// bestF[x] = best F1 of community x (in the "from" partition) against
	// any community of the other partition.
	from, to := c.rows, c.cols
	if !rowsAsTruth {
		from, to = c.cols, c.rows
	}
	bestF := make(map[int]float64, len(from))
	for key, cnt := range c.table {
		a, b := key[0], key[1]
		if !rowsAsTruth {
			a, b = b, a
		}
		inter := float64(cnt)
		prec := inter / float64(to[b])
		rec := inter / float64(from[a])
		f := 2 * prec * rec / (prec + rec)
		if f > bestF[a] {
			bestF[a] = f
		}
	}
	var sum float64
	for _, x := range sortedLabels(from) {
		sum += float64(from[x]) * bestF[x]
	}
	return sum / float64(c.n)
}

// nvd computes the normalized Van Dongen distance:
//
//	NVD = 1 − (1/2n)·(Σ_a max_b n_ab + Σ_b max_a n_ab)
//
// 0 means identical partitions; higher is worse.
func (c *contingency) nvd() float64 {
	maxRow := make(map[int]int)
	maxCol := make(map[int]int)
	for key, cnt := range c.table {
		if cnt > maxRow[key[0]] {
			maxRow[key[0]] = cnt
		}
		if cnt > maxCol[key[1]] {
			maxCol[key[1]] = cnt
		}
	}
	var s int
	for _, v := range maxRow {
		s += v
	}
	for _, v := range maxCol {
		s += v
	}
	return 1 - float64(s)/float64(2*c.n)
}

// pairCounts returns the pair-confusion quantities:
// a = pairs together in both, b = together in A only, c2 = together in B
// only, d = together in neither.
func (c *contingency) pairCounts() (a, b, c2, d float64) {
	comb2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumI, sumJ float64
	for _, key := range c.sortedCells() {
		sumIJ += comb2(c.table[key])
	}
	for _, lbl := range sortedLabels(c.rows) {
		sumI += comb2(c.rows[lbl])
	}
	for _, lbl := range sortedLabels(c.cols) {
		sumJ += comb2(c.cols[lbl])
	}
	total := comb2(c.n)
	a = sumIJ
	b = sumI - sumIJ
	c2 = sumJ - sumIJ
	d = total - sumI - sumJ + sumIJ
	return
}

func (c *contingency) randIndex() float64 {
	a, b, c2, d := c.pairCounts()
	tot := a + b + c2 + d
	if tot == 0 {
		return 1
	}
	return (a + d) / tot
}

func (c *contingency) adjustedRand() float64 {
	a, b, c2, d := c.pairCounts()
	tot := a + b + c2 + d
	if tot == 0 {
		return 1
	}
	sumI := a + b
	sumJ := a + c2
	expected := sumI * sumJ / tot
	maxIdx := (sumI + sumJ) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial in the same way
	}
	return (a - expected) / (maxIdx - expected)
}

func (c *contingency) jaccard() float64 {
	a, b, c2, _ := c.pairCounts()
	den := a + b + c2
	if den == 0 {
		return 1
	}
	return a / den
}

// VScores are the information-theoretic homogeneity/completeness measures
// of Rosenberg & Hirschberg (beyond the paper's Table II; provided as an
// extension for downstream users).
type VScores struct {
	// Homogeneity is 1 when every detected cluster contains members of a
	// single truth class.
	Homogeneity float64
	// Completeness is 1 when every truth class lands in a single detected
	// cluster.
	Completeness float64
	// V is their harmonic mean.
	V float64
}

// VMeasure computes homogeneity, completeness, and their harmonic mean
// between a detected membership and the reference truth.
func VMeasure(detected, truth graph.Membership) (VScores, error) {
	c, err := buildContingency(detected, truth)
	if err != nil {
		return VScores{}, err
	}
	n := float64(c.n)
	entropy := func(counts map[int]int) float64 {
		var h float64
		for _, lbl := range sortedLabels(counts) {
			p := float64(counts[lbl]) / n
			h -= p * math.Log(p)
		}
		return h
	}
	hDet := entropy(c.rows)   // H(detected)
	hTruth := entropy(c.cols) // H(truth)
	// Conditional entropies from the joint table.
	var hTruthGivenDet, hDetGivenTruth float64
	for _, key := range c.sortedCells() {
		cnt := c.table[key]
		pij := float64(cnt) / n
		hTruthGivenDet -= pij * math.Log(float64(cnt)/float64(c.rows[key[0]]))
		hDetGivenTruth -= pij * math.Log(float64(cnt)/float64(c.cols[key[1]]))
	}
	s := VScores{Homogeneity: 1, Completeness: 1}
	if hTruth > 0 {
		s.Homogeneity = 1 - hTruthGivenDet/hTruth
	}
	if hDet > 0 {
		s.Completeness = 1 - hDetGivenTruth/hDet
	}
	if s.Homogeneity+s.Completeness > 0 {
		s.V = 2 * s.Homogeneity * s.Completeness / (s.Homogeneity + s.Completeness)
	}
	return s, nil
}
