package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIdenticalPartitions(t *testing.T) {
	a := graph.Membership{0, 0, 1, 1, 2, 2}
	s, err := Compare(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.NMI, 1) || !almost(s.FMeasure, 1) || !almost(s.RI, 1) ||
		!almost(s.ARI, 1) || !almost(s.JI, 1) {
		t.Errorf("identical partitions: %+v, want all 1", s)
	}
	if !almost(s.NVD, 0) {
		t.Errorf("NVD = %g, want 0", s.NVD)
	}
}

func TestRelabeledPartitionsAreIdentical(t *testing.T) {
	a := graph.Membership{0, 0, 1, 1, 2, 2}
	b := graph.Membership{9, 9, 4, 4, 7, 7}
	s, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.NMI, 1) || !almost(s.ARI, 1) || !almost(s.NVD, 0) {
		t.Errorf("relabeled partitions: %+v", s)
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := Compare(graph.Membership{0}, graph.Membership{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Compare(graph.Membership{}, graph.Membership{}); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestKnownRandIndex(t *testing.T) {
	// Classic example: A = {0,0,0,1,1,1}, B = {0,0,1,1,2,2}.
	a := graph.Membership{0, 0, 0, 1, 1, 1}
	b := graph.Membership{0, 0, 1, 1, 2, 2}
	s, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// pairs: n=6, C(6,2)=15.
	// together in both: pairs (0,1) and (4,5) and (2? no) → a=2
	// A-pairs: 2*C(3,2)=6; B-pairs: 3*C(2,2*)=3 → b=6-2=4, c=3-2=1, d=15-6-3+2=8
	// RI = (2+8)/15 = 2/3
	if !almost(s.RI, 10.0/15.0) {
		t.Errorf("RI = %g, want %g", s.RI, 10.0/15.0)
	}
	// JI = a/(a+b+c) = 2/7
	if !almost(s.JI, 2.0/7.0) {
		t.Errorf("JI = %g, want %g", s.JI, 2.0/7.0)
	}
	// ARI = (a - E)/(max - E); E = 6*3/15 = 1.2; max = 4.5
	wantARI := (2.0 - 1.2) / (4.5 - 1.2)
	if !almost(s.ARI, wantARI) {
		t.Errorf("ARI = %g, want %g", s.ARI, wantARI)
	}
}

func TestARIZeroForIndependentExpected(t *testing.T) {
	// Random labelings should give ARI ≈ 0 (can be slightly negative).
	rng := rand.New(rand.NewSource(5))
	n := 5000
	a := make(graph.Membership, n)
	b := make(graph.Membership, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Intn(8)
		b[i] = rng.Intn(8)
	}
	s, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ARI) > 0.02 {
		t.Errorf("ARI = %g for independent labelings, want ≈ 0", s.ARI)
	}
	if s.NMI > 0.05 {
		t.Errorf("NMI = %g for independent labelings, want ≈ 0", s.NMI)
	}
}

func TestTrivialPartitions(t *testing.T) {
	// Both single-cluster: all measures should report perfect agreement.
	a := graph.Membership{3, 3, 3}
	s, err := Compare(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.NMI, 1) || !almost(s.ARI, 1) || !almost(s.RI, 1) || !almost(s.JI, 1) {
		t.Errorf("trivial identical: %+v", s)
	}
	// All-singletons vs all-one-cluster: maximal disagreement in pair terms.
	n := 6
	single := make(graph.Membership, n)
	one := make(graph.Membership, n)
	for i := range single {
		single[i] = i
	}
	s, err = Compare(single, one)
	if err != nil {
		t.Fatal(err)
	}
	if s.JI != 0 {
		t.Errorf("JI = %g, want 0", s.JI)
	}
	if s.NMI != 0 {
		t.Errorf("NMI = %g, want 0", s.NMI)
	}
}

func TestSubsplitPartitionFMeasure(t *testing.T) {
	// Truth has one community of 4; detected splits it 2+2.
	truth := graph.Membership{0, 0, 0, 0}
	det := graph.Membership{0, 0, 1, 1}
	s, err := Compare(det, truth)
	if err != nil {
		t.Fatal(err)
	}
	// From the truth side: best F1 of the size-4 community vs a size-2
	// detected piece = 2·(1·0.5)/(1+0.5) = 2/3. From the detected side:
	// each piece matches truth fully with F1 = 2/3. Symmetric avg = 2/3.
	if !almost(s.FMeasure, 2.0/3.0) {
		t.Errorf("FMeasure = %g, want 2/3", s.FMeasure)
	}
	// NVD: Σ_a max = 2+2 (detected side), Σ_b max = 2 (truth side picks
	// larger overlap 2). NVD = 1 − (4+2)/(2·4) = 0.25.
	if !almost(s.NVD, 0.25) {
		t.Errorf("NVD = %g, want 0.25", s.NVD)
	}
}

func TestSymmetry(t *testing.T) {
	// NMI, RI, ARI, JI, NVD and our symmetric F-measure are all symmetric.
	rng := rand.New(rand.NewSource(11))
	n := 300
	a := make(graph.Membership, n)
	b := make(graph.Membership, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Intn(5)
		b[i] = rng.Intn(7)
	}
	s1, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compare(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s1.NMI, s2.NMI) || !almost(s1.RI, s2.RI) || !almost(s1.ARI, s2.ARI) ||
		!almost(s1.JI, s2.JI) || !almost(s1.NVD, s2.NVD) || !almost(s1.FMeasure, s2.FMeasure) {
		t.Errorf("asymmetric measures: %+v vs %+v", s1, s2)
	}
}

func TestQuickBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		a := make(graph.Membership, n)
		b := make(graph.Membership, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(1 + rng.Intn(10))
			b[i] = rng.Intn(1 + rng.Intn(10))
		}
		s, err := Compare(a, b)
		if err != nil {
			return false
		}
		inUnit := func(v float64) bool { return v >= 0 && v <= 1 }
		return inUnit(s.NMI) && inUnit(s.FMeasure) && inUnit(s.NVD) &&
			inUnit(s.RI) && inUnit(s.JI) && s.ARI >= -1 && s.ARI <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPerfectOnPermutedLabels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		k := 2 + rng.Intn(6)
		a := make(graph.Membership, n)
		for i := range a {
			a[i] = rng.Intn(k)
		}
		perm := rng.Perm(k + 3)
		b := make(graph.Membership, n)
		for i := range b {
			b[i] = perm[a[i]]
		}
		s, err := Compare(a, b)
		if err != nil {
			return false
		}
		return almost(s.NMI, 1) && almost(s.ARI, 1) && almost(s.NVD, 0) && almost(s.JI, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVMeasureIdentical(t *testing.T) {
	a := graph.Membership{0, 0, 1, 1, 2}
	s, err := VMeasure(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Homogeneity, 1) || !almost(s.Completeness, 1) || !almost(s.V, 1) {
		t.Errorf("identical: %+v", s)
	}
}

func TestVMeasureSubsplit(t *testing.T) {
	// Detected splits one truth class in two: perfectly homogeneous,
	// incompletely complete.
	truth := graph.Membership{0, 0, 0, 0, 1, 1}
	det := graph.Membership{0, 0, 1, 1, 2, 2}
	s, err := VMeasure(det, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Homogeneity, 1) {
		t.Errorf("Homogeneity = %g, want 1", s.Homogeneity)
	}
	if s.Completeness >= 1 {
		t.Errorf("Completeness = %g, want < 1", s.Completeness)
	}
	if s.V <= 0 || s.V >= 1 {
		t.Errorf("V = %g", s.V)
	}
	// The mirror case flips the roles.
	s2, err := VMeasure(truth, det)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s2.Completeness, 1) || s2.Homogeneity >= 1 {
		t.Errorf("mirror: %+v", s2)
	}
	if !almost(s.V, s2.V) {
		t.Errorf("V not symmetric: %g vs %g", s.V, s2.V)
	}
}

func TestVMeasureBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		a := make(graph.Membership, n)
		b := make(graph.Membership, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(6)
			b[i] = rng.Intn(6)
		}
		s, err := VMeasure(a, b)
		if err != nil {
			return false
		}
		in01 := func(v float64) bool { return v >= -1e-9 && v <= 1+1e-9 }
		return in01(s.Homogeneity) && in01(s.Completeness) && in01(s.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
