// Package rebalance computes mid-solve vertex-migration plans from the
// replicated per-rank work vector of the clustering loop.
//
// The paper balances load exactly once, statically, at partition time; but
// Louvain convergence is skewed — communities collapse unevenly across
// ranks, so the balance point moves during the solve (ROADMAP item 3;
// Lu & Halappanavar and Sahu in PAPERS.md). The fused per-iteration
// reduction already carries the full work vector to every rank, so each
// rank can run the same pure planning function on the same inputs and
// obtain the same plan with no extra agreement collective. That contract —
// Plan is a pure function of (work, seed) — is the determinism anchor of
// the whole migration protocol; see docs/PERFORMANCE.md.
//
// A plan speaks in abstract work units (the core's deterministic
// arcs-scanned count), never in vertices: the donor rank alone translates
// its side of the plan into concrete vertices, which is itself a pure
// function of the donor's replicated-deterministic subgraph state.
package rebalance

import (
	"fmt"
	"sort"
)

// Move directs From to transfer ownership of approximately Units work
// units' worth of vertices to To. From and To are rank indices; Units is
// always positive.
type Move struct {
	From, To int
	Units    int64
}

// Policy turns a per-rank work vector into a migration plan.
type Policy interface {
	// Name is the registry key (flag value, trace events, benchmarks).
	Name() string
	// Plan returns the transfers for the given work vector (work[r] is the
	// last iteration's work units on rank r). It MUST be a pure function of
	// (work, seed): every rank evaluates it independently on the replicated
	// vector, and all ranks must arrive at the identical plan. An empty
	// plan means no migration this round.
	Plan(work []int64, seed int64) []Move
}

// ByName resolves a registered policy. Valid names are "none", "greedy",
// and "ideal".
func ByName(name string) (Policy, error) {
	switch name {
	case "", "greedy":
		return greedy{}, nil
	case "ideal":
		return ideal{}, nil
	case "none":
		return none{}, nil
	default:
		return nil, fmt.Errorf("rebalance: unknown policy %q (want %v)", name, Names())
	}
}

// Names lists the registered policy names.
func Names() []string { return []string{"none", "greedy", "ideal"} }

// none never migrates: the off-policy control arm of the ablation (runs
// the trigger machinery but ships nothing).
type none struct{}

func (none) Name() string               { return "none" }
func (none) Plan([]int64, int64) []Move { return nil }

// greedy is the conservative production policy: it sheds work only from
// ranks whose load exceeds the mean by more than greedySlackNum/Den
// (10%), and only the excess above the mean, pairing the hottest donors
// with the coldest receivers. It migrates the minimum volume that brings
// every rank within the slack band, which keeps migration traffic — and
// the risk of oscillation — low.
type greedy struct{}

// greedySlackNum/greedySlackDen define the tolerated overload band:
// a rank within mean·(1+1/10) is left alone.
const (
	greedySlackNum = 1
	greedySlackDen = 10
)

func (greedy) Name() string { return "greedy" }

func (greedy) Plan(work []int64, seed int64) []Move {
	return level(work, func(mean int64) int64 { return mean + mean*greedySlackNum/greedySlackDen })
}

// ideal is the oracle baseline in the style of the scheduler-simulator's
// edf-lb/mine-lb/ideal-lb family: it re-splits the measured work exactly,
// leveling every rank to the mean with no slack. It bounds the headroom a
// smarter policy could still claim; migration traffic is charged to it
// like to any other policy, so the bound is honest.
type ideal struct{}

func (ideal) Name() string { return "ideal" }

func (ideal) Plan(work []int64, seed int64) []Move {
	return level(work, func(mean int64) int64 { return mean })
}

// level builds the donor/receiver pairing shared by greedy and ideal:
// ranks above threshold(mean) donate their excess over the mean, ranks
// below the mean absorb up to their deficit. Donors are visited hottest
// first, receivers coldest first, ties broken by rank index — all integer
// comparisons, so the plan is identical on every rank.
func level(work []int64, threshold func(mean int64) int64) []Move {
	p := len(work)
	if p < 2 {
		return nil
	}
	var sum int64
	for _, w := range work {
		sum += w
	}
	mean := sum / int64(p)
	if mean == 0 {
		return nil
	}
	thr := threshold(mean)

	type load struct {
		rank  int
		delta int64 // excess over mean (donors) or deficit below mean (receivers)
	}
	var donors, recvs []load
	for r, w := range work {
		switch {
		case w > thr && w > mean:
			donors = append(donors, load{rank: r, delta: w - mean})
		case w < mean:
			recvs = append(recvs, load{rank: r, delta: mean - w})
		}
	}
	if len(donors) == 0 || len(recvs) == 0 {
		return nil
	}
	sort.Slice(donors, func(i, j int) bool {
		if donors[i].delta != donors[j].delta {
			return donors[i].delta > donors[j].delta
		}
		return donors[i].rank < donors[j].rank
	})
	sort.Slice(recvs, func(i, j int) bool {
		if recvs[i].delta != recvs[j].delta {
			return recvs[i].delta > recvs[j].delta
		}
		return recvs[i].rank < recvs[j].rank
	})

	var plan []Move
	di, ri := 0, 0
	for di < len(donors) && ri < len(recvs) {
		d, r := &donors[di], &recvs[ri]
		units := d.delta
		if r.delta < units {
			units = r.delta
		}
		if units > 0 {
			plan = append(plan, Move{From: d.rank, To: r.rank, Units: units})
			d.delta -= units
			r.delta -= units
		}
		if d.delta == 0 {
			di++
		}
		if r.delta == 0 {
			ri++
		}
	}
	return plan
}
