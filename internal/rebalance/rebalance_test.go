package rebalance

import (
	"reflect"
	"testing"
)

func mustPolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatalf("ByName(%q): %v", name, err)
	}
	return p
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p := mustPolicy(t, name)
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if p := mustPolicy(t, ""); p.Name() != "greedy" {
		t.Errorf("empty name resolved to %q, want greedy", p.Name())
	}
	if _, err := ByName("edf"); err == nil {
		t.Error("ByName(edf) succeeded, want error")
	}
}

func TestNonePlansNothing(t *testing.T) {
	p := mustPolicy(t, "none")
	if plan := p.Plan([]int64{100, 1, 1, 1}, 1); plan != nil {
		t.Errorf("none planned %v, want nil", plan)
	}
}

// applyPlan simulates the transfers on a copy of the work vector.
func applyPlan(work []int64, plan []Move) []int64 {
	out := append([]int64(nil), work...)
	for _, m := range plan {
		out[m.From] -= m.Units
		out[m.To] += m.Units
	}
	return out
}

func TestIdealLevelsToMean(t *testing.T) {
	p := mustPolicy(t, "ideal")
	work := []int64{400, 100, 80, 20}
	plan := p.Plan(work, 1)
	if len(plan) == 0 {
		t.Fatal("ideal planned nothing for a 4:1 imbalance")
	}
	after := applyPlan(work, plan)
	mean := int64(150)
	for r, w := range after {
		// Integer division leaves at most p units of remainder imbalance.
		if w > mean+int64(len(work)) || (work[r] < mean && w > mean) {
			t.Errorf("rank %d at %d after ideal plan, mean %d", r, w, mean)
		}
	}
	// No rank that was below the mean ends above it.
	for r, w := range after {
		if work[r] <= mean && w > mean {
			t.Errorf("receiver %d overfilled: %d > mean %d", r, w, mean)
		}
	}
}

func TestGreedyRespectsSlack(t *testing.T) {
	p := mustPolicy(t, "greedy")
	// Max within 10% of mean: no migration.
	if plan := p.Plan([]int64{105, 100, 100, 100}, 1); plan != nil {
		t.Errorf("greedy planned %v inside the slack band", plan)
	}
	// A clear hotspot: plan exists and only the hot rank donates.
	work := []int64{400, 100, 100, 100}
	plan := p.Plan(work, 1)
	if len(plan) == 0 {
		t.Fatal("greedy planned nothing for a hotspot")
	}
	for _, m := range plan {
		if m.From != 0 {
			t.Errorf("greedy moved from rank %d, want only rank 0", m.From)
		}
		if m.Units <= 0 {
			t.Errorf("non-positive move units: %+v", m)
		}
	}
	after := applyPlan(work, plan)
	if after[0] != 175 { // mean of 700/4 = 175: donor sheds exactly its excess
		t.Errorf("donor at %d after greedy plan, want 175", after[0])
	}
}

func TestPlanIsPure(t *testing.T) {
	work := []int64{977, 31, 402, 88, 640, 5, 5, 210}
	for _, name := range Names() {
		p := mustPolicy(t, name)
		ref := p.Plan(work, 42)
		for i := 0; i < 10; i++ {
			if got := p.Plan(work, 42); !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: plan differs between calls: %v vs %v", name, got, ref)
			}
		}
	}
}

func TestDegenerateVectors(t *testing.T) {
	for _, name := range []string{"greedy", "ideal"} {
		p := mustPolicy(t, name)
		for _, work := range [][]int64{
			nil,
			{100},            // single rank
			{0, 0, 0, 0},     // no work at all
			{50, 50, 50, 50}, // perfectly balanced
		} {
			if plan := p.Plan(work, 1); len(plan) != 0 {
				t.Errorf("%s planned %v for %v", name, plan, work)
			}
		}
	}
}
