// Package trace provides the phase timers used to reproduce the paper's
// execution-time breakdown (Figure 8): each clustering iteration is split
// into Find Best Community, Broadcast Delegates, Swap Ghost Vertex State,
// and Other.
package trace

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The package doubles as the sanctioned diagnostics sink for library code:
// packages under internal/ must not write to process-global streams (the
// noprint analyzer enforces this — experiment tables own stdout, and p
// ranks printing concurrently interleave into garbage), so runtime
// diagnostics go through Logf, whose writer is injectable and serialized.

// Now returns the current wall-clock time. It exists so solver packages
// can take timestamps without calling time.Now directly: the nondet
// analyzer forbids raw wall-clock reads in solver code, and funneling them
// through this package keeps every sanctioned use auditable in one place.
// The contract is that wall clock feeds only reported timings — never an
// algorithmic decision.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t (see Now).
func Since(t time.Time) time.Duration { return time.Since(t) }

var (
	logMu  sync.Mutex
	logOut io.Writer = os.Stderr
)

// SetLogOutput redirects Logf; w == nil restores the default (stderr).
// Tests use this to capture or silence library diagnostics.
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	logOut = w
}

// Logf writes one diagnostic line (a newline is appended if missing).
// Safe for concurrent use from multiple ranks.
func Logf(format string, args ...any) {
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(logOut, format, args...)
	if !strings.HasSuffix(format, "\n") {
		io.WriteString(logOut, "\n")
	}
}

// Event stream. Unlike Logf (diagnostics that default to stderr), events
// are high-volume runtime occurrences — fault injections, retries,
// reconnects — that are silenced by default and enabled by tests or
// operators chasing a robustness problem. Each line is prefixed with its
// kind so a capture can be grepped per event class.

var (
	eventMu  sync.Mutex
	eventOut io.Writer // nil = discard
)

// SetEventOutput directs Eventf to w; nil restores the default (discard).
func SetEventOutput(w io.Writer) {
	eventMu.Lock()
	defer eventMu.Unlock()
	eventOut = w
}

// Eventf records one event of the given kind (e.g. "retry", "chaos",
// "peerdown"). It is a no-op unless SetEventOutput installed a sink. Safe
// for concurrent use from multiple ranks.
func Eventf(kind, format string, args ...any) {
	eventMu.Lock()
	defer eventMu.Unlock()
	if eventOut == nil {
		return
	}
	fmt.Fprintf(eventOut, "[%s] ", kind)
	fmt.Fprintf(eventOut, format, args...)
	if !strings.HasSuffix(format, "\n") {
		io.WriteString(eventOut, "\n")
	}
}

// Per-collective accounting. The comm layer reports every collective call
// (kind, wall time, payload bytes) here when enabled; benchmarks use the
// snapshot to attribute per-iteration latency and volume to individual
// collective kinds (the Fig. 8 communication breakdown). Disabled by
// default: the guard is a single atomic load, so production runs pay no
// time.Now() calls.

// Collective identifies one collective-operation kind.
type Collective int

const (
	// CollAlltoallv covers all Alltoallv variants (sequential, overlapped,
	// streaming).
	CollAlltoallv Collective = iota
	// CollAllgather is the ring allgather.
	CollAllgather
	// CollAllreduce covers AllreduceBytes and every wrapper built on it,
	// including the fused IterStats reduction.
	CollAllreduce
	// CollAllreduceRing covers the ring and pipelined-ring reductions.
	CollAllreduceRing
	// CollGather is the rooted gather.
	CollGather
	// CollBcast is the binomial-tree broadcast.
	CollBcast
	// CollBarrier is the dissemination barrier.
	CollBarrier
	// CollMigrate is the vertex-migration exchange of the mid-solve load
	// rebalancer (comm.MigrationExchange); kept separate from CollAlltoallv
	// so migration traffic is visible in its own row of the census.
	CollMigrate

	numCollectives
)

func (k Collective) String() string {
	switch k {
	case CollAlltoallv:
		return "Alltoallv"
	case CollAllgather:
		return "Allgather"
	case CollAllreduce:
		return "Allreduce"
	case CollAllreduceRing:
		return "AllreduceRing"
	case CollGather:
		return "Gather"
	case CollBcast:
		return "Bcast"
	case CollBarrier:
		return "Barrier"
	case CollMigrate:
		return "Migrate"
	default:
		return fmt.Sprintf("Collective(%d)", int(k))
	}
}

var collStatsOn atomic.Bool

type collCounter struct {
	calls atomic.Int64
	ns    atomic.Int64
	bytes atomic.Int64
}

var collStats [numCollectives]collCounter

// EnableCollectiveStats switches per-collective accounting on or off.
func EnableCollectiveStats(on bool) { collStatsOn.Store(on) }

// CollectiveStatsEnabled reports whether accounting is on. Callers check
// this before taking timestamps so the disabled path costs one atomic load.
func CollectiveStatsEnabled() bool { return collStatsOn.Load() }

// RecordCollective accumulates one collective call. Safe for concurrent use
// from multiple ranks; a no-op while accounting is disabled.
func RecordCollective(k Collective, ns, bytes int64) {
	if !collStatsOn.Load() || k < 0 || k >= numCollectives {
		return
	}
	collStats[k].calls.Add(1)
	collStats[k].ns.Add(ns)
	collStats[k].bytes.Add(bytes)
}

// CollectiveStat is a point-in-time copy of one collective kind's counters.
type CollectiveStat struct {
	Calls, NS, Bytes int64
}

// CollectiveTotals sums the counters over all collective kinds.
func CollectiveTotals() CollectiveStat {
	var t CollectiveStat
	for i := range collStats {
		t.Calls += collStats[i].calls.Load()
		t.NS += collStats[i].ns.Load()
		t.Bytes += collStats[i].bytes.Load()
	}
	return t
}

// CollectiveSnapshot returns the non-zero counters keyed by kind name.
func CollectiveSnapshot() map[string]CollectiveStat {
	m := make(map[string]CollectiveStat)
	for i := range collStats {
		s := CollectiveStat{
			Calls: collStats[i].calls.Load(),
			NS:    collStats[i].ns.Load(),
			Bytes: collStats[i].bytes.Load(),
		}
		if s.Calls != 0 {
			m[Collective(i).String()] = s
		}
	}
	return m
}

// FormatCollectiveSnapshot renders a snapshot as one stable-ordered line.
func FormatCollectiveSnapshot(m map[string]CollectiveStat) string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, k := range names {
		if i > 0 {
			sb.WriteString(" ")
		}
		s := m[k]
		fmt.Fprintf(&sb, "%s{calls=%d ns=%d bytes=%d}", k, s.Calls, s.NS, s.Bytes)
	}
	return sb.String()
}

// ResetCollectiveStats zeroes all per-collective counters.
func ResetCollectiveStats() {
	for i := range collStats {
		collStats[i].calls.Store(0)
		collStats[i].ns.Store(0)
		collStats[i].bytes.Store(0)
	}
}

// Phase identifies one component of a clustering iteration.
type Phase int

const (
	// FindBest is the local modularity-gain sweep.
	FindBest Phase = iota
	// BroadcastDelegates is the collective that agrees on delegate moves.
	BroadcastDelegates
	// SwapGhost is the ghost community-state exchange.
	SwapGhost
	// Other covers community bookkeeping, Σtot synchronization, and the
	// modularity reduction.
	Other

	numPhases
)

// NumPhases is the number of distinct phases.
const NumPhases = int(numPhases)

func (p Phase) String() string {
	switch p {
	case FindBest:
		return "FindBestCommunity"
	case BroadcastDelegates:
		return "BroadcastDelegates"
	case SwapGhost:
		return "SwapGhostVertexState"
	case Other:
		return "Other"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Breakdown accumulates time per phase.
type Breakdown struct {
	Durations [NumPhases]time.Duration
	Iters     int
}

// Add accumulates d into phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	b.Durations[p] += d
}

// Merge adds another breakdown into this one.
func (b *Breakdown) Merge(o Breakdown) {
	for i := range b.Durations {
		b.Durations[i] += o.Durations[i]
	}
	b.Iters += o.Iters
}

// Total returns the summed duration over all phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.Durations {
		t += d
	}
	return t
}

// PerIter returns the mean per-iteration duration of phase p.
func (b *Breakdown) PerIter(p Phase) time.Duration {
	if b.Iters == 0 {
		return 0
	}
	return b.Durations[p] / time.Duration(b.Iters)
}

// String formats the breakdown as a single line.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i := 0; i < NumPhases; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%v", Phase(i), b.Durations[i].Round(time.Microsecond))
	}
	return sb.String()
}

// Timer measures one phase at a time.
type Timer struct {
	b     *Breakdown
	phase Phase
	start time.Time
	open  bool
}

// NewTimer returns a Timer writing into b.
func NewTimer(b *Breakdown) *Timer { return &Timer{b: b} }

// Start begins timing phase p, closing any open phase first.
func (t *Timer) Start(p Phase) {
	t.Stop()
	t.phase = p
	t.start = time.Now()
	t.open = true
}

// Stop closes the open phase, if any.
func (t *Timer) Stop() {
	if t.open {
		t.b.Add(t.phase, time.Since(t.start))
		t.open = false
	}
}
