package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAddAndTotal(t *testing.T) {
	var b Breakdown
	b.Add(FindBest, 10*time.Millisecond)
	b.Add(FindBest, 5*time.Millisecond)
	b.Add(SwapGhost, 1*time.Millisecond)
	if got := b.Durations[FindBest]; got != 15*time.Millisecond {
		t.Errorf("FindBest = %v", got)
	}
	if got := b.Total(); got != 16*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(Other, time.Second)
	a.Iters = 2
	b.Add(Other, time.Second)
	b.Add(BroadcastDelegates, time.Millisecond)
	b.Iters = 3
	a.Merge(b)
	if a.Durations[Other] != 2*time.Second {
		t.Errorf("Other = %v", a.Durations[Other])
	}
	if a.Durations[BroadcastDelegates] != time.Millisecond {
		t.Errorf("BroadcastDelegates = %v", a.Durations[BroadcastDelegates])
	}
	if a.Iters != 5 {
		t.Errorf("Iters = %d", a.Iters)
	}
}

func TestPerIter(t *testing.T) {
	var b Breakdown
	b.Add(FindBest, 10*time.Millisecond)
	if b.PerIter(FindBest) != 0 {
		t.Error("PerIter with zero iters should be 0")
	}
	b.Iters = 5
	if got := b.PerIter(FindBest); got != 2*time.Millisecond {
		t.Errorf("PerIter = %v", got)
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		FindBest:           "FindBestCommunity",
		BroadcastDelegates: "BroadcastDelegates",
		SwapGhost:          "SwapGhostVertexState",
		Other:              "Other",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Phase(99).String() != "Phase(99)" {
		t.Error("unknown phase string")
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Add(FindBest, time.Millisecond)
	s := b.String()
	for _, want := range []string{"FindBestCommunity=", "SwapGhostVertexState=", "Other="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestLogfRedirects(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(nil)
	Logf("hello %d", 7)
	Logf("already terminated\n")
	if got := buf.String(); got != "hello 7\nalready terminated\n" {
		t.Errorf("Logf output = %q", got)
	}
}

func TestLogfConcurrent(t *testing.T) {
	// Lines from concurrent ranks must come out whole, not interleaved.
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(nil)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				Logf("rank %d line %d", r, i)
			}
		}(r)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "rank ") || !strings.Contains(ln, " line ") {
			t.Fatalf("torn log line %q", ln)
		}
	}
}

func TestTimerAccumulates(t *testing.T) {
	var b Breakdown
	tm := NewTimer(&b)
	tm.Start(FindBest)
	time.Sleep(2 * time.Millisecond)
	tm.Start(SwapGhost) // implicitly stops FindBest
	time.Sleep(time.Millisecond)
	tm.Stop()
	tm.Stop() // double stop is a no-op
	if b.Durations[FindBest] <= 0 {
		t.Error("FindBest not recorded")
	}
	if b.Durations[SwapGhost] <= 0 {
		t.Error("SwapGhost not recorded")
	}
	if b.Durations[FindBest] < b.Durations[SwapGhost] {
		t.Errorf("expected FindBest (%v) >= SwapGhost (%v)", b.Durations[FindBest], b.Durations[SwapGhost])
	}
}

func TestEventfDiscardsByDefault(t *testing.T) {
	// Must not panic or write anywhere with no sink installed.
	SetEventOutput(nil)
	Eventf("retry", "attempt %d", 3)
}

func TestEventfCapturesWithKindPrefix(t *testing.T) {
	var buf bytes.Buffer
	SetEventOutput(&buf)
	defer SetEventOutput(nil)
	Eventf("chaos", "dropped %d", 2)
	Eventf("peerdown", "rank %d\n", 1)
	want := "[chaos] dropped 2\n[peerdown] rank 1\n"
	if got := buf.String(); got != want {
		t.Errorf("Eventf output = %q, want %q", got, want)
	}
	SetEventOutput(nil)
	Eventf("chaos", "after reset")
	if got := buf.String(); got != want {
		t.Errorf("Eventf wrote after sink reset: %q", got)
	}
}
