package wire

import "testing"

// FuzzReader exercises the decoder against arbitrary bytes: it must never
// panic or allocate absurdly, only set Err.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	b := NewBuffer(0)
	b.PutU64s([]uint64{1, 2, 3})
	b.PutF64s([]float64{1.5})
	b.PutBytes([]byte("seed"))
	f.Add(b.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.Uvarint()
		r.Varint()
		r.U32()
		r.U64()
		r.F64()
		r.Bytes()
		r.U64s()
		r.I64s()
		r.Ints()
		r.F64s()
		// Err may or may not be set, but the reader must stay in bounds.
		if r.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
