package wire

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/analysis"
)

// TestNoallocAnnotations bounds every //perf:noalloc-annotated function of
// this package with a zero-allocation AllocsPerRun ceiling, keyed off the
// same annotation list the noalloc analyzer verifies statically
// (analysis.NoallocFuncs): the fixed-width Put* encoders and the scalar
// Reader decoders are the per-message hot path of every collective, so a
// regression here multiplies across ranks and iterations.
func TestNoallocAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting under -short")
	}
	annotated, err := analysis.NoallocFuncs(".")
	if err != nil {
		t.Fatalf("reading //perf:noalloc annotations: %v", err)
	}

	buf := NewBuffer(64)
	// payload carries one value per scalar decoder, in the order the Reader
	// drivers below consume... each driver Resets first, so layout only has
	// to satisfy the first decode of each op.
	payload := func() []byte {
		b := NewBuffer(64)
		b.PutUvarint(300)
		return append([]byte(nil), b.Bytes()...)
	}()
	var rd Reader

	drivers := map[string]func(){
		"Buffer.Reset":      func() { buf.Reset() },
		"Buffer.PutUvarint": func() { buf.Reset(); buf.PutUvarint(1 << 40) },
		"Buffer.PutVarint":  func() { buf.Reset(); buf.PutVarint(-(1 << 40)) },
		"Buffer.PutU32":     func() { buf.Reset(); buf.PutU32(0xdeadbeef) },
		"Buffer.PutU64":     func() { buf.Reset(); buf.PutU64(1 << 60) },
		"Buffer.PutI64":     func() { buf.Reset(); buf.PutI64(-(1 << 60)) },
		"Buffer.PutF64":     func() { buf.Reset(); buf.PutF64(3.14159) },
		"Reader.Reset":      func() { rd.Reset(payload) },
		"Reader.Uvarint":    func() { rd.Reset(payload); rd.Uvarint() },
		"Reader.Varint": func() {
			buf.Reset()
			buf.PutVarint(-7)
			rd.Reset(buf.Bytes())
			rd.Varint()
		},
		"Reader.U32": func() {
			buf.Reset()
			buf.PutU32(42)
			rd.Reset(buf.Bytes())
			rd.U32()
		},
		"Reader.U64": func() {
			buf.Reset()
			buf.PutU64(42)
			rd.Reset(buf.Bytes())
			rd.U64()
		},
		"Reader.I64": func() {
			buf.Reset()
			buf.PutI64(-42)
			rd.Reset(buf.Bytes())
			rd.I64()
		},
		"Reader.F64": func() {
			buf.Reset()
			buf.PutF64(2.5)
			rd.Reset(buf.Bytes())
			rd.F64()
		},
	}

	var table []string
	for name := range drivers {
		table = append(table, name)
	}
	sort.Strings(table)
	if fmt.Sprint(table) != fmt.Sprint(annotated) {
		t.Fatalf("driver table out of sync with //perf:noalloc annotations:\n  annotated: %v\n  drivers:   %v", annotated, table)
	}

	for _, name := range table {
		op := drivers[name]
		op() // settle one-time buffer growth before counting
		if got := testing.AllocsPerRun(10, op); got > 0 {
			t.Errorf("%s: %v allocs/op, //perf:noalloc promises 0", name, got)
		}
	}
}
