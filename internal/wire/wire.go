// Package wire implements compact binary encoding for inter-rank messages.
//
// All payloads exchanged through the comm layer are encoded with this
// package: little-endian fixed-width integers and floats, unsigned varints
// for counts, and bulk slice helpers. The encoding is hand-rolled (no
// encoding/gob, no reflection) so that message sizes are predictable and the
// communication-volume statistics reported by the experiments are meaningful.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is an append-only encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the buffer's storage.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of encoded bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset discards the buffer contents but keeps the storage.
//
//perf:noalloc
func (w *Buffer) Reset() { w.b = w.b[:0] }

// PutUvarint appends an unsigned varint.
//
//perf:noalloc
func (w *Buffer) PutUvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// PutVarint appends a signed varint.
//
//perf:noalloc
func (w *Buffer) PutVarint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}

// PutU32 appends a fixed-width little-endian uint32.
//
//perf:noalloc
func (w *Buffer) PutU32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}

// PutU64 appends a fixed-width little-endian uint64.
//
//perf:noalloc
func (w *Buffer) PutU64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

// PutI64 appends a fixed-width little-endian int64.
//
//perf:noalloc
func (w *Buffer) PutI64(v int64) {
	w.PutU64(uint64(v))
}

// PutF64 appends a little-endian IEEE-754 float64.
//
//perf:noalloc
func (w *Buffer) PutF64(v float64) {
	w.PutU64(math.Float64bits(v))
}

// PutBytes appends a length-prefixed byte slice.
func (w *Buffer) PutBytes(p []byte) {
	w.PutUvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// PutU64s appends a length-prefixed slice of uint64 as varints.
func (w *Buffer) PutU64s(vs []uint64) {
	w.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		w.PutUvarint(v)
	}
}

// PutI64s appends a length-prefixed slice of int64 as varints.
func (w *Buffer) PutI64s(vs []int64) {
	w.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		w.PutVarint(v)
	}
}

// PutInts appends a length-prefixed slice of int as varints.
func (w *Buffer) PutInts(vs []int) {
	w.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		w.PutVarint(int64(v))
	}
}

// PutF64s appends a length-prefixed slice of float64, fixed width.
func (w *Buffer) PutF64s(vs []float64) {
	w.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		w.PutF64(v)
	}
}

// Reader decodes values written by Buffer, in order.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over p.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Reset re-points the Reader at p and clears its state, so hot paths can
// keep a Reader value on the stack instead of allocating one per message.
//
//perf:noalloc
func (r *Reader) Reset(p []byte) {
	r.b = p
	r.off = 0
	r.err = nil
}

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or corrupt message reading %s at offset %d (len %d)", what, r.off, len(r.b))
	}
}

// Uvarint reads an unsigned varint.
//
//perf:noalloc
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
//
//perf:noalloc
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// U32 reads a fixed-width uint32.
//
//perf:noalloc
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a fixed-width uint64.
//
//perf:noalloc
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// I64 reads a fixed-width int64.
//
//perf:noalloc
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
//
//perf:noalloc
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte slice. The result aliases the input.
func (r *Reader) Bytes() []byte {
	n := int(r.Uvarint())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("bytes")
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U64s reads a length-prefixed slice of varint uint64.
func (r *Reader) U64s() []uint64 {
	n := int(r.Uvarint())
	if r.err != nil || n == 0 {
		return nil
	}
	if n > r.Remaining() { // each element is at least one byte
		r.fail("u64 slice length")
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.Uvarint()
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// I64s reads a length-prefixed slice of varint int64.
func (r *Reader) I64s() []int64 {
	n := int(r.Uvarint())
	if r.err != nil || n == 0 {
		return nil
	}
	if n > r.Remaining() {
		r.fail("i64 slice length")
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.Varint()
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// Ints reads a length-prefixed slice of varint int.
func (r *Reader) Ints() []int {
	n := int(r.Uvarint())
	if r.err != nil || n == 0 {
		return nil
	}
	if n > r.Remaining() {
		r.fail("int slice length")
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(r.Varint())
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// F64s reads a length-prefixed slice of float64.
func (r *Reader) F64s() []float64 {
	n := int(r.Uvarint())
	if r.err != nil || n == 0 {
		return nil
	}
	if n*8 > r.Remaining() {
		r.fail("f64 slice length")
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	if r.err != nil {
		return nil
	}
	return vs
}
