package wire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	b := NewBuffer(0)
	b.PutUvarint(0)
	b.PutUvarint(300)
	b.PutUvarint(math.MaxUint64)
	b.PutVarint(-1)
	b.PutVarint(1 << 40)
	b.PutU32(0xdeadbeef)
	b.PutU64(42)
	b.PutI64(-42)
	b.PutF64(3.14159)
	b.PutF64(math.Inf(-1))

	r := NewReader(b.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d, want 300", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want max", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d, want 1<<40", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %g", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %g, want -Inf", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestRoundTripSlices(t *testing.T) {
	b := NewBuffer(0)
	u64s := []uint64{0, 1, 1 << 62, 77}
	i64s := []int64{-5, 0, 9, -1 << 40}
	ints := []int{3, -4, 0}
	f64s := []float64{0, -2.5, 1e300}
	raw := []byte("hello")
	b.PutU64s(u64s)
	b.PutI64s(i64s)
	b.PutInts(ints)
	b.PutF64s(f64s)
	b.PutBytes(raw)
	b.PutBytes(nil)

	r := NewReader(b.Bytes())
	if got := r.U64s(); !reflect.DeepEqual(got, u64s) {
		t.Errorf("U64s = %v, want %v", got, u64s)
	}
	if got := r.I64s(); !reflect.DeepEqual(got, i64s) {
		t.Errorf("I64s = %v, want %v", got, i64s)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, ints) {
		t.Errorf("Ints = %v, want %v", got, ints)
	}
	if got := r.F64s(); !reflect.DeepEqual(got, f64s) {
		t.Errorf("F64s = %v, want %v", got, f64s)
	}
	if got := r.Bytes(); string(got) != "hello" {
		t.Errorf("Bytes = %q, want hello", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("Bytes = %q, want empty", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestEmptySlicesDecodeNil(t *testing.T) {
	b := NewBuffer(0)
	b.PutU64s(nil)
	b.PutF64s([]float64{})
	r := NewReader(b.Bytes())
	if got := r.U64s(); got != nil {
		t.Errorf("U64s = %v, want nil", got)
	}
	if got := r.F64s(); got != nil {
		t.Errorf("F64s = %v, want nil", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTruncatedInputs(t *testing.T) {
	b := NewBuffer(0)
	b.PutU64(12345)
	b.PutF64s([]float64{1, 2, 3})
	full := b.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		r.F64s()
		if cut < len(full) && r.Err() == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

func TestCorruptSliceLength(t *testing.T) {
	// A declared length far beyond the remaining bytes must error, not
	// attempt a huge allocation.
	b := NewBuffer(0)
	b.PutUvarint(1 << 40)
	r := NewReader(b.Bytes())
	if got := r.U64s(); got != nil || r.Err() == nil {
		t.Fatalf("U64s on corrupt length: got %v err %v", got, r.Err())
	}
}

func TestErrorSticks(t *testing.T) {
	r := NewReader([]byte{0x80}) // incomplete varint
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	first := r.Err()
	r.U64()
	r.Uvarint()
	if r.Err() != first {
		t.Fatalf("error replaced: %v -> %v", first, r.Err())
	}
}

func TestResetReuses(t *testing.T) {
	b := NewBuffer(16)
	b.PutU64(1)
	if b.Len() != 8 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.PutU64(2)
	r := NewReader(b.Bytes())
	if got := r.U64(); got != 2 {
		t.Fatalf("U64 = %d, want 2", got)
	}
}

func TestQuickRoundTripU64s(t *testing.T) {
	f := func(vs []uint64) bool {
		b := NewBuffer(0)
		b.PutU64s(vs)
		r := NewReader(b.Bytes())
		got := r.U64s()
		if r.Err() != nil {
			return false
		}
		if len(vs) == 0 {
			return got == nil
		}
		return reflect.DeepEqual(got, vs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripMixed(t *testing.T) {
	f := func(a int64, b float64, c []byte, d []int64) bool {
		w := NewBuffer(0)
		w.PutVarint(a)
		w.PutF64(b)
		w.PutBytes(c)
		w.PutI64s(d)
		r := NewReader(w.Bytes())
		ga := r.Varint()
		gb := r.F64()
		gc := r.Bytes()
		gd := r.I64s()
		if r.Err() != nil {
			return false
		}
		if ga != a {
			return false
		}
		if gb != b && !(math.IsNaN(gb) && math.IsNaN(b)) {
			return false
		}
		if string(gc) != string(c) {
			return false
		}
		if len(d) == 0 {
			return gd == nil
		}
		return reflect.DeepEqual(gd, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
