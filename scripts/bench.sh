#!/usr/bin/env bash
# bench.sh — run the perf benchmark suite and emit BENCH_<pr>.json: the
# stage-1 kernel microbenchmarks (allocs/op is the headline number) plus the
# end-to-end macro benchmarks, formatted by cmd/benchfmt against the
# committed pre-change seed numbers. CI-runnable; override the iteration
# counts for a quick smoke:
#
#   scripts/bench.sh                         # full run, writes BENCH_5.json
#   KERNEL_TIME=5x MACRO_TIME=1x COMM_TIME=10x scripts/bench.sh OUT=/dev/null
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${PR:-10}"
OUT="${OUT:-BENCH_${PR}.json}"
SEED="${SEED:-scripts/bench_seed_pr${PR}.json}"
KERNEL_TIME="${KERNEL_TIME:-50x}"
MACRO_TIME="${MACRO_TIME:-3x}"
COMM_TIME="${COMM_TIME:-100x}"
INGEST_TIME="${INGEST_TIME:-5x}"
OOCORE_TIME="${OOCORE_TIME:-1x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== kernel microbenchmarks (-benchtime $KERNEL_TIME) ==" >&2
go test -run '^$' -bench '^BenchmarkKernel' -benchtime "$KERNEL_TIME" -benchmem \
    ./internal/core/ | tee -a "$raw" >&2

echo "== collective engine benchmarks (-benchtime $COMM_TIME) ==" >&2
go test -run '^$' \
    -bench '^(BenchmarkAlltoallvSeq|BenchmarkAlltoallvOverlap|BenchmarkAllreduceRingPipelined)$' \
    -benchtime "$COMM_TIME" -benchmem ./internal/comm/ | tee -a "$raw" >&2

echo "== ingest & partition benchmarks (-benchtime $INGEST_TIME) ==" >&2
go test -run '^$' -bench '^(BenchmarkIngestEdgeList|BenchmarkIngestSharded)$' \
    -benchtime "$INGEST_TIME" -benchmem ./internal/graph/ | tee -a "$raw" >&2
go test -run '^$' -bench '^BenchmarkPartitionBuild$' \
    -benchtime "$INGEST_TIME" -benchmem ./internal/partition/ | tee -a "$raw" >&2

echo "== out-of-core benchmarks (-benchtime $INGEST_TIME / $OOCORE_TIME) ==" >&2
# The PR-9 numbers: compressed v2 decode throughput and on-disk size
# (file-B), the two-pass streaming partitioner against the in-RAM builder,
# and the full streamed generate -> partition -> solve pipeline with the
# heap high-water (heap-MB) as the acceptance metric. Set OOCORE_SCALE=23
# for the committed >= 10^8-edge run (see EXPERIMENTS.md — ~26 min on one
# core); the default scale-14 keeps CI fast.
go test -run '^$' -bench '^(BenchmarkShardedV2Read|BenchmarkPartitionBuildStreaming)$' \
    -benchtime "$INGEST_TIME" -benchmem ./internal/graph/ ./internal/partition/ | tee -a "$raw" >&2
go test -run '^$' -bench '^BenchmarkOocorePipeline$' -timeout 12h \
    -benchtime "$OOCORE_TIME" -benchmem . | tee -a "$raw" >&2

echo "== merge benchmarks (-benchtime $MACRO_TIME) ==" >&2
# Stage-2 distributed merge (PR 10): the seed map-of-maps implementation
# against the zero-map counting-sort pipeline on the same converged world.
# ns/op, allocs/op, and wire-B/op (per-rank collective payload, from the
# trace collective counters) are the acceptance metrics.
go test -run '^$' -bench '^BenchmarkMerge(Seed|Preagg)$' -benchtime "$MACRO_TIME" -benchmem \
    ./internal/core/ | tee -a "$raw" >&2

echo "== rebalance macro benchmarks (-benchtime $MACRO_TIME) ==" >&2
# Off/Greedy/Ideal on the planted-hub workload; sim-ms/op (cumulative
# simulated parallel time) is the headline number — the greedy policy's win
# over the static baseline is the PR-7 acceptance metric.
go test -run '^$' -bench '^BenchmarkRebalance' -benchtime "$MACRO_TIME" -benchmem \
    ./internal/core/ | tee -a "$raw" >&2

echo "== macro benchmarks (-benchtime $MACRO_TIME) ==" >&2
go test -run '^$' -bench '^(BenchmarkDistributedLouvain|BenchmarkFig8Breakdown)$' \
    -benchtime "$MACRO_TIME" -benchmem . | tee -a "$raw" >&2

echo "== serving benchmarks (-benchtime $MACRO_TIME) ==" >&2
# The resident-service numbers (PR 8): the multi-tenant latency/throughput
# sweep (req/s, p50-µs, p99-µs at each offered rate) and the incremental-
# update-vs-full-resolve bracket — the incremental path's win is the PR-8
# acceptance metric.
go test -run '^$' -bench '^(BenchmarkServeLoad|BenchmarkIncrementalUpdate|BenchmarkFullResolve)$' \
    -benchtime "$MACRO_TIME" -benchmem ./internal/loadgen/ | tee -a "$raw" >&2

seedArgs=()
if [ -f "$SEED" ]; then
    seedArgs=(-seed "$SEED")
else
    echo "note: no seed file $SEED; emitting current numbers only" >&2
fi
go run ./cmd/benchfmt -pr "$PR" "${seedArgs[@]}" < "$raw" > "$OUT"
echo "wrote $OUT" >&2
