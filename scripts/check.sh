#!/usr/bin/env bash
# check.sh — the full local/CI gate: build, vet, project lint, race tests,
# and a short fuzz smoke of every Fuzz* target. CI runs exactly this script,
# so a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== project lint (cmd/lint) =="
go run ./cmd/lint ./...

echo "== go test -race -shuffle=on =="
# Shuffled execution order (PR 8) keeps tests honest about shared state:
# an order dependency fails here with the seed printed for replay
# (go test -shuffle=<seed> to reproduce).
go test -race -shuffle=on ./...

echo "== bench smoke (1 iteration per benchmark) =="
# The rebalance macro benchmarks are the PR-7 acceptance metric: fail loudly
# if they ever disappear from the discovery set rather than silently passing.
go test -list '^BenchmarkRebalanceGreedy$' -run '^$' ./internal/core | grep '^BenchmarkRebalanceGreedy$' > /dev/null \
    || { echo "error: BenchmarkRebalanceGreedy missing from internal/core" >&2; exit 1; }
# Likewise the serving-load sweep, the PR-8 acceptance metric.
go test -list '^BenchmarkServeLoad$' -run '^$' ./internal/loadgen | grep '^BenchmarkServeLoad$' > /dev/null \
    || { echo "error: BenchmarkServeLoad missing from internal/loadgen" >&2; exit 1; }
go test -run '^$' -bench . -benchtime 1x -benchmem ./... > /dev/null

echo "== chaos matrix smoke (-short: seeds 1-5, both transports) =="
# Quick seeded fault-injection sweep of the transport conformance suite
# (docs/ROBUSTNESS.md). The full 100-run matrix runs above as part of
# "go test -race ./..."; this step repeats the -short slice un-raced so a
# chaos regression is reported by a step named after it.
go test -run 'TestConformance|TestChaosMatrix' -short -count 1 ./internal/comm

echo "== fuzz smoke (5s per target) =="
# The loop below auto-discovers targets, but the sharded graph format is a
# hard requirement of the ingest pipeline (PR 5): fail loudly if its fuzz
# harness ever disappears rather than silently skipping it.
# (plain grep, not -q: -q exits at first match and the closed pipe would
# fail the go-test side under pipefail)
go test -list '^FuzzReadBinarySharded$' ./internal/graph | grep '^FuzzReadBinarySharded$' > /dev/null \
    || { echo "error: FuzzReadBinarySharded missing from internal/graph" >&2; exit 1; }
# Likewise the suppression-directive parser: every //lint:ignore in the tree
# flows through it, so its fuzz harness must stay in the discovery set.
go test -list '^FuzzIgnoreDirective$' ./internal/analysis | grep '^FuzzIgnoreDirective$' > /dev/null \
    || { echo "error: FuzzIgnoreDirective missing from internal/analysis" >&2; exit 1; }
for pkg in ./internal/wire ./internal/graph ./internal/comm ./internal/analysis; do
    for tgt in $(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true); do
        echo "-- fuzz $pkg $tgt"
        go test -run '^$' -fuzz "^${tgt}\$" -fuzztime 5s "$pkg"
    done
done

echo "== all checks passed =="
