#!/usr/bin/env bash
# check.sh — the full local/CI gate: build, vet, project lint, race tests,
# and a short fuzz smoke of every Fuzz* target. CI runs exactly this script,
# so a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== project lint (cmd/lint) =="
go run ./cmd/lint ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration per benchmark) =="
go test -run '^$' -bench . -benchtime 1x -benchmem ./... > /dev/null

echo "== fuzz smoke (5s per target) =="
for pkg in ./internal/wire ./internal/graph; do
    for tgt in $(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true); do
        echo "-- fuzz $pkg $tgt"
        go test -run '^$' -fuzz "^${tgt}\$" -fuzztime 5s "$pkg"
    done
done

echo "== all checks passed =="
