#!/usr/bin/env bash
# check.sh — the full local/CI gate: build, vet, project lint, race tests,
# and a short fuzz smoke of every Fuzz* target. CI runs exactly this script,
# so a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== project lint (cmd/lint) =="
go run ./cmd/lint ./...

echo "== go test -race -shuffle=on =="
# Shuffled execution order (PR 8) keeps tests honest about shared state:
# an order dependency fails here with the seed printed for replay
# (go test -shuffle=<seed> to reproduce).
go test -race -shuffle=on ./...

echo "== bench smoke (1 iteration per benchmark) =="
# The rebalance macro benchmarks are the PR-7 acceptance metric: fail loudly
# if they ever disappear from the discovery set rather than silently passing.
go test -list '^BenchmarkRebalanceGreedy$' -run '^$' ./internal/core | grep '^BenchmarkRebalanceGreedy$' > /dev/null \
    || { echo "error: BenchmarkRebalanceGreedy missing from internal/core" >&2; exit 1; }
# Likewise the serving-load sweep, the PR-8 acceptance metric.
go test -list '^BenchmarkServeLoad$' -run '^$' ./internal/loadgen | grep '^BenchmarkServeLoad$' > /dev/null \
    || { echo "error: BenchmarkServeLoad missing from internal/loadgen" >&2; exit 1; }
# And the merge seed-vs-preagg pair, the PR-10 acceptance metric.
go test -list '^BenchmarkMergePreagg$' -run '^$' ./internal/core | grep '^BenchmarkMergePreagg$' > /dev/null \
    || { echo "error: BenchmarkMergePreagg missing from internal/core" >&2; exit 1; }
go test -run '^$' -bench . -benchtime 1x -benchmem ./... > /dev/null

echo "== chaos matrix smoke (-short: seeds 1-5, both transports) =="
# Quick seeded fault-injection sweep of the transport conformance suite
# (docs/ROBUSTNESS.md). The full 100-run matrix runs above as part of
# "go test -race ./..."; this step repeats the -short slice un-raced so a
# chaos regression is reported by a step named after it.
go test -run 'TestConformance|TestChaosMatrix' -short -count 1 ./internal/comm

echo "== out-of-core heap budget =="
# A streamed generate -> partition -> solve must stay inside the committed
# heap budget (scripts/oocore_heap_budget, in MB). The -memstats line is
# the HeapInuse high-water sampled every 20ms; tripping the budget means
# the out-of-core path has started materialising whole-graph state again.
oocore_budget_mb=$(grep -v '^#' scripts/oocore_heap_budget | head -1)
oocore_tmp=$(mktemp -d)
trap 'rm -rf "$oocore_tmp"' EXIT
go build -o "$oocore_tmp/gengraph" ./cmd/gengraph
go build -o "$oocore_tmp/dlouvain" ./cmd/dlouvain
"$oocore_tmp/gengraph" -stream -gen rmat:scale=14,ef=8,seed=7 -shards 16 -o "$oocore_tmp/check.sbin" > /dev/null
hw_mb=$("$oocore_tmp/dlouvain" -graph "$oocore_tmp/check.sbin" -oocore -memstats -p 2 \
    | awk '/^heap high-water:/ {print $3}')
[ -n "$hw_mb" ] || { echo "error: dlouvain -memstats printed no heap high-water line" >&2; exit 1; }
awk -v hw="$hw_mb" -v budget="$oocore_budget_mb" 'BEGIN { exit !(hw+0 <= budget+0) }' \
    || { echo "error: oocore heap high-water ${hw_mb} MB exceeds budget ${oocore_budget_mb} MB" >&2; exit 1; }
echo "oocore heap high-water: ${hw_mb} MB (budget ${oocore_budget_mb} MB)"

echo "== fuzz smoke (5s per target) =="
# The loop below auto-discovers targets, but the sharded graph format is a
# hard requirement of the ingest pipeline (PR 5): fail loudly if its fuzz
# harness ever disappears rather than silently skipping it.
# (plain grep, not -q: -q exits at first match and the closed pipe would
# fail the go-test side under pipefail)
go test -list '^FuzzReadBinarySharded$' ./internal/graph | grep '^FuzzReadBinarySharded$' > /dev/null \
    || { echo "error: FuzzReadBinarySharded missing from internal/graph" >&2; exit 1; }
# The windowed decode paths are what the out-of-core pipeline (PR 9) lives
# on: FuzzReadVertexRange cross-checks ReadWindow/ReadVertexRange against
# the whole-file decoder in both format versions, and must stay discovered.
go test -list '^FuzzReadVertexRange$' ./internal/graph | grep '^FuzzReadVertexRange$' > /dev/null \
    || { echo "error: FuzzReadVertexRange missing from internal/graph" >&2; exit 1; }
# Likewise the suppression-directive parser: every //lint:ignore in the tree
# flows through it, so its fuzz harness must stay in the discovery set.
go test -list '^FuzzIgnoreDirective$' ./internal/analysis | grep '^FuzzIgnoreDirective$' > /dev/null \
    || { echo "error: FuzzIgnoreDirective missing from internal/analysis" >&2; exit 1; }
for pkg in ./internal/wire ./internal/graph ./internal/comm ./internal/analysis; do
    for tgt in $(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true); do
        echo "-- fuzz $pkg $tgt"
        go test -run '^$' -fuzz "^${tgt}\$" -fuzztime 5s "$pkg"
    done
done

echo "== all checks passed =="
